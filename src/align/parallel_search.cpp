#include "align/parallel_search.h"

#include <algorithm>
#include <future>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "seq/swdb.h"
#include "util/error.h"
#include "util/timer.h"

namespace swdual::align {

namespace {

/// Residue-balanced contiguous partition: cut after the record whose
/// cumulative residue count crosses the next multiple of total/num_chunks.
/// Every chunk gets at least one record; empty records count as cost 1 so a
/// database of empty sequences still splits. Requires a non-empty db.
std::vector<std::pair<std::size_t, std::size_t>> balanced_cuts(
    const DbView& db, std::size_t num_chunks) {
  const std::size_t n = db.size();
  num_chunks = std::clamp<std::size_t>(num_chunks, 1, n);
  std::vector<std::uint64_t> prefix(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    prefix[i + 1] = prefix[i] + std::max<std::uint64_t>(db[i].size(), 1);
  }
  std::vector<std::pair<std::size_t, std::size_t>> cuts;
  cuts.reserve(num_chunks);
  std::size_t begin = 0;
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::uint64_t target = prefix[n] * (c + 1) / num_chunks;
    std::size_t end = begin + 1;
    while (end < n && prefix[end] < target) ++end;
    // Leave one record for each remaining chunk.
    end = std::min(end, n - (num_chunks - 1 - c));
    end = std::max(end, begin + 1);
    cuts.emplace_back(begin, end);
    begin = end;
  }
  cuts.back().second = n;
  return cuts;
}

}  // namespace

ParallelSearchEngine::ParallelSearchEngine(const DbView& db,
                                           const ParallelSearchOptions& options)
    : db_(db),
      tracer_(options.tracer),
      metrics_(options.metrics),
      trace_track_(options.trace_track) {
  original_index_.resize(db_.size());
  std::iota(original_index_.begin(), original_index_.end(), 0);
  if (options.sort_by_length) {
    std::stable_sort(original_index_.begin(), original_index_.end(),
                     [&db](std::size_t a, std::size_t b) {
                       return db[a].size() > db[b].size();
                     });
    for (std::size_t p = 0; p < db_.size(); ++p) {
      db_[p] = db[original_index_[p]];
    }
  }
  init_partition(options);
}

ParallelSearchEngine::ParallelSearchEngine(const seq::MappedSwdb& db,
                                           const ParallelSearchOptions& options)
    : tracer_(options.tracer),
      metrics_(options.metrics),
      trace_track_(options.trace_track) {
  // Same longest-first permutation the DbView ctor computes, but read from
  // the database's lane-batch index (identical tie-breaking by record id),
  // and every span points into the shared mapping — no copies, no sort.
  original_index_.reserve(db.size());
  db_.reserve(db.size());
  if (options.sort_by_length) {
    for (const std::uint32_t id : db.lane_order()) {
      original_index_.push_back(id);
      db_.push_back(db.residues(id));
    }
  } else {
    for (std::size_t i = 0; i < db.size(); ++i) {
      original_index_.push_back(i);
      db_.push_back(db.residues(i));
    }
  }
  init_partition(options);
}

void ParallelSearchEngine::init_partition(
    const ParallelSearchOptions& options) {
  permuted_pos_.resize(original_index_.size());
  for (std::size_t p = 0; p < original_index_.size(); ++p) {
    permuted_pos_[original_index_[p]] = p;
  }
  total_residues_ = db_residue_count(db_);
  const std::size_t threads = std::max<std::size_t>(1, options.threads);
  std::size_t num_chunks;
  if (options.chunk_records > 0) {
    num_chunks =
        (db_.size() + options.chunk_records - 1) / options.chunk_records;
  } else {
    num_chunks = threads * std::max<std::size_t>(1, options.chunks_per_thread);
  }
  if (!db_.empty()) {
    if (options.chunk_records > 0) {
      // Fixed record-count chunks, as requested.
      for (std::size_t begin = 0; begin < db_.size();
           begin += options.chunk_records) {
        chunks_.push_back(
            {begin, std::min(begin + options.chunk_records, db_.size())});
      }
    } else {
      for (const auto& [begin, end] : balanced_cuts(db_, num_chunks)) {
        chunks_.push_back({begin, end});
      }
    }
  }
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
}

ParallelSearchEngine::ChunkOutcome ParallelSearchEngine::run_chunk(
    const SearchProfiles& profiles, const Chunk& chunk,
    std::size_t chunk_index, std::size_t top_k) const {
  obs::Span span;
  if (tracer_) {
    span = tracer_->span("chunk_scan", "align", trace_track_);
    span.arg("chunk", static_cast<double>(chunk_index));
    span.arg("records", static_cast<double>(chunk.end - chunk.begin));
  }
  WallTimer timer;
  ChunkOutcome outcome;
  outcome.result = search_range(profiles, db_, chunk.begin, chunk.end);
  span.arg("cells", static_cast<double>(outcome.result.cells));
  if (metrics_) metrics_->observe("chunk_scan_seconds", timer.seconds());
  if (top_k > 0) {
    for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
      push_top_hit(outcome.hits,
                   {original_index_[i], outcome.result.scores[i - chunk.begin]},
                   top_k);
    }
  }
  return outcome;
}

std::vector<ParallelSearchEngine::Chunk>
ParallelSearchEngine::batch_aligned_chunks(std::size_t batch) const {
  if (batch <= 1 || chunks_.size() <= 1) return chunks_;
  const std::size_t n = db_.size();
  std::vector<Chunk> out;
  out.reserve(chunks_.size());
  std::size_t begin = 0;
  for (std::size_t c = 0; c + 1 < chunks_.size(); ++c) {
    // Snap each cut to the nearest batch multiple; a cut swallowed by its
    // predecessor simply merges the two chunks.
    const std::size_t end =
        std::min(n, (chunks_[c].end + batch / 2) / batch * batch);
    if (end <= begin) continue;
    out.push_back({begin, end});
    begin = end;
  }
  if (begin < n) out.push_back({begin, n});
  return out;
}

RankedSearchResult ParallelSearchEngine::run(const SearchProfiles& profiles,
                                             std::size_t top_k) const {
  WallTimer timer;

  // The inter-sequence kernel processes the (length-sorted) records in
  // groups of one SIMD batch; keep chunk boundaries on batch multiples so
  // no batch is split mid-vector across two chunks.
  const std::vector<Chunk> chunks =
      profiles.kernel() == KernelKind::kInterSeq
          ? batch_aligned_chunks(backend_lanes16(profiles.backend()))
          : chunks_;

  std::vector<ChunkOutcome> outcomes(chunks.size());
  if (pool_) {
    std::vector<std::future<ChunkOutcome>> futures;
    futures.reserve(chunks.size());
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      const Chunk chunk = chunks[c];
      futures.push_back(pool_->submit([this, &profiles, chunk, c, top_k] {
        return run_chunk(profiles, chunk, c, top_k);
      }));
    }
    for (std::size_t c = 0; c < futures.size(); ++c) {
      outcomes[c] = futures[c].get();
    }
  } else {
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      outcomes[c] = run_chunk(profiles, chunks[c], c, top_k);
    }
  }

  // Deterministic merge: chunks reduced in index order, scores scattered
  // through the inverse permutation back to database order.
  RankedSearchResult ranked;
  SearchResult& merged = ranked.result;
  merged.scores.assign(db_.size(), 0);
  for (std::size_t c = 0; c < outcomes.size(); ++c) {
    const Chunk& chunk = chunks[c];
    const SearchResult& r = outcomes[c].result;
    for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
      merged.scores[original_index_[i]] = r.scores[i - chunk.begin];
    }
    merged.cells += r.cells;
    merged.overflow_rescans += r.overflow_rescans;
    for (const SearchHit& hit : outcomes[c].hits) {
      push_top_hit(ranked.hits, hit, top_k);
    }
  }
  finish_top_hits(ranked.hits);
  merged.seconds = timer.seconds();
  return ranked;
}

std::vector<ParallelSearchEngine::ChunkOutcome>
ParallelSearchEngine::run_chunk_many(
    std::span<const SearchProfiles* const> profiles, const Chunk& chunk,
    std::size_t chunk_index, std::size_t top_k) const {
  obs::Span span;
  if (tracer_) {
    span = tracer_->span("chunk_scan_group", "align", trace_track_);
    span.arg("chunk", static_cast<double>(chunk_index));
    span.arg("records", static_cast<double>(chunk.end - chunk.begin));
    span.arg("queries", static_cast<double>(profiles.size()));
  }
  WallTimer timer;
  std::vector<ChunkOutcome> outcomes(profiles.size());
  for (std::size_t q = 0; q < profiles.size(); ++q) {
    ChunkOutcome& outcome = outcomes[q];
    outcome.result = search_range(*profiles[q], db_, chunk.begin, chunk.end);
    if (top_k > 0) {
      for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
        push_top_hit(
            outcome.hits,
            {original_index_[i], outcome.result.scores[i - chunk.begin]},
            top_k);
      }
    }
  }
  if (metrics_) metrics_->observe("chunk_scan_seconds", timer.seconds());
  return outcomes;
}

std::vector<RankedSearchResult> ParallelSearchEngine::search_ranked_many(
    std::span<const SearchProfiles* const> profiles, std::size_t top_k) const {
  std::vector<RankedSearchResult> results(profiles.size());
  if (profiles.empty()) return results;
  for (const SearchProfiles* p : profiles) {
    SWDUAL_REQUIRE(p != nullptr, "null profile set in multi-query group");
    SWDUAL_REQUIRE(p->kernel() == profiles[0]->kernel(),
                   "multi-query groups must share one kernel");
  }
  WallTimer timer;

  const std::vector<Chunk> chunks =
      profiles[0]->kernel() == KernelKind::kInterSeq
          ? batch_aligned_chunks(backend_lanes16(profiles[0]->backend()))
          : chunks_;

  // chunk-major outcomes: per_chunk[c][q] is chunk c scanned with query q.
  std::vector<std::vector<ChunkOutcome>> per_chunk(chunks.size());
  if (pool_) {
    std::vector<std::future<std::vector<ChunkOutcome>>> futures;
    futures.reserve(chunks.size());
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      const Chunk chunk = chunks[c];
      futures.push_back(pool_->submit([this, profiles, chunk, c, top_k] {
        return run_chunk_many(profiles, chunk, c, top_k);
      }));
    }
    for (std::size_t c = 0; c < futures.size(); ++c) {
      per_chunk[c] = futures[c].get();
    }
  } else {
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      per_chunk[c] = run_chunk_many(profiles, chunks[c], c, top_k);
    }
  }

  // Same deterministic index-order merge as run(), once per query.
  const double elapsed = timer.seconds();
  for (std::size_t q = 0; q < profiles.size(); ++q) {
    RankedSearchResult& ranked = results[q];
    SearchResult& merged = ranked.result;
    merged.scores.assign(db_.size(), 0);
    for (std::size_t c = 0; c < per_chunk.size(); ++c) {
      const Chunk& chunk = chunks[c];
      const SearchResult& r = per_chunk[c][q].result;
      for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
        merged.scores[original_index_[i]] = r.scores[i - chunk.begin];
      }
      merged.cells += r.cells;
      merged.overflow_rescans += r.overflow_rescans;
      for (const SearchHit& hit : per_chunk[c][q].hits) {
        push_top_hit(ranked.hits, hit, top_k);
      }
    }
    finish_top_hits(ranked.hits);
    merged.seconds = elapsed;
  }
  return results;
}

std::vector<ScreenResult> ParallelSearchEngine::screen_chunk_many(
    std::span<const SearchProfiles* const> profiles, const Chunk& chunk,
    std::size_t chunk_index, std::size_t band) const {
  obs::Span span;
  if (tracer_) {
    span = tracer_->span("filter_screen", "align", trace_track_);
    span.arg("chunk", static_cast<double>(chunk_index));
    span.arg("records", static_cast<double>(chunk.end - chunk.begin));
    span.arg("queries", static_cast<double>(profiles.size()));
  }
  WallTimer timer;
  std::vector<ScreenResult> screens(profiles.size());
  for (std::size_t q = 0; q < profiles.size(); ++q) {
    screens[q] = screen_range(*profiles[q], db_, chunk.begin, chunk.end, band);
  }
  if (metrics_) metrics_->observe("chunk_scan_seconds", timer.seconds());
  return screens;
}

void ParallelSearchEngine::rescore_candidates(
    const SearchProfiles& profiles,
    const std::vector<std::uint32_t>& candidates, const ScreenResult& screen,
    FilteredSearchResult& out) const {
  std::vector<std::uint32_t> rescan_index;
  for (const std::uint32_t c : candidates) {
    if (!screen.exact[c]) rescan_index.push_back(c);
  }
  // Longest-first so the interseq rescan packs similar lengths into the
  // same SIMD batch; lanes are independent, so order never changes scores.
  std::stable_sort(rescan_index.begin(), rescan_index.end(),
                   [this](std::uint32_t a, std::uint32_t b) {
                     return db_[permuted_pos_[a]].size() >
                            db_[permuted_pos_[b]].size();
                   });
  DbView rescan;
  rescan.reserve(rescan_index.size());
  for (const std::uint32_t c : rescan_index) {
    rescan.push_back(db_[permuted_pos_[c]]);
  }
  obs::Span span;
  if (tracer_) {
    span = tracer_->span("filter_rescore", "align", trace_track_);
    span.arg("candidates", static_cast<double>(candidates.size()));
    span.arg("rescans", static_cast<double>(rescan.size()));
  }
  const SearchResult rescored =
      search_range(profiles, rescan, 0, rescan.size());
  out.result.cells += rescored.cells;
  out.result.overflow_rescans += rescored.overflow_rescans;
  for (std::size_t i = 0; i < rescan_index.size(); ++i) {
    out.result.scores[rescan_index[i]] = rescored.scores[i];
  }
  out.stats.rescans += rescan_index.size();
}

std::vector<ScreenResult> ParallelSearchEngine::screen_many(
    std::span<const SearchProfiles* const> profiles, std::size_t band) const {
  std::vector<ScreenResult> merged(profiles.size());
  for (const SearchProfiles* p : profiles) {
    SWDUAL_REQUIRE(p != nullptr, "null profile set in multi-query group");
  }
  for (std::size_t q = 0; q < profiles.size(); ++q) {
    merged[q].scores.assign(db_.size(), 0);
    merged[q].exact.assign(db_.size(), 0);
    merged[q].edge_hit.assign(db_.size(), 0);
  }
  if (db_.empty() || profiles.empty()) return merged;

  // The banded kernel batches byte lanes; keep those batches unsplit the
  // same way run() aligns interseq chunks to the 16-bit lane count.
  const std::vector<Chunk> chunks =
      profiles[0]->kernel() == KernelKind::kScalar
          ? chunks_
          : batch_aligned_chunks(backend_lanes8(profiles[0]->backend()));

  std::vector<std::vector<ScreenResult>> per_chunk(chunks.size());
  if (pool_) {
    std::vector<std::future<std::vector<ScreenResult>>> futures;
    futures.reserve(chunks.size());
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      const Chunk chunk = chunks[c];
      futures.push_back(pool_->submit([this, profiles, chunk, c, band] {
        return screen_chunk_many(profiles, chunk, c, band);
      }));
    }
    for (std::size_t c = 0; c < futures.size(); ++c) {
      per_chunk[c] = futures[c].get();
    }
  } else {
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      per_chunk[c] = screen_chunk_many(profiles, chunks[c], c, band);
    }
  }

  // Scatter back to database order through the inverse permutation, like
  // run()'s merge — per-record screen values are chunk-independent.
  for (std::size_t q = 0; q < profiles.size(); ++q) {
    ScreenResult& out = merged[q];
    for (std::size_t c = 0; c < per_chunk.size(); ++c) {
      const Chunk& chunk = chunks[c];
      const ScreenResult& r = per_chunk[c][q];
      for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
        const std::size_t at = original_index_[i];
        out.scores[at] = r.scores[i - chunk.begin];
        out.exact[at] = r.exact[i - chunk.begin];
        out.edge_hit[at] = r.edge_hit[i - chunk.begin];
      }
      out.cells += r.cells;
    }
  }
  return merged;
}

std::vector<FilteredSearchResult> ParallelSearchEngine::search_filtered_many(
    std::span<const SearchProfiles* const> profiles, std::size_t top_k,
    const FilterConfig& config) const {
  config.validate();
  if (!config.enabled()) {
    // Bit-identical to the unfiltered group scan.
    std::vector<RankedSearchResult> ranked =
        search_ranked_many(profiles, top_k);
    std::vector<FilteredSearchResult> results(ranked.size());
    for (std::size_t q = 0; q < ranked.size(); ++q) {
      results[q].result = std::move(ranked[q].result);
      results[q].hits = std::move(ranked[q].hits);
    }
    return results;
  }
  WallTimer timer;
  std::vector<ScreenResult> screens = screen_many(profiles, config.band);
  std::vector<FilteredSearchResult> results(profiles.size());
  for (std::size_t q = 0; q < profiles.size(); ++q) {
    FilteredSearchResult& out = results[q];
    ScreenResult& screen = screens[q];
    const std::vector<std::uint32_t> candidates =
        filter_select_candidates(screen, top_k, config, &out.stats);
    out.result.cells = screen.cells;
    out.result.scores = std::move(screen.scores);
    screen.scores.clear();
    rescore_candidates(*profiles[q], candidates, screen, out);
    for (const std::uint32_t c : candidates) {
      push_top_hit(out.hits, {c, out.result.scores[c]}, top_k);
    }
    finish_top_hits(out.hits);
    out.result.seconds = timer.seconds();
    if (metrics_) {
      metrics_->add("filter_candidates",
                    static_cast<double>(out.stats.candidates));
      metrics_->add("filter_rescans", static_cast<double>(out.stats.rescans));
      metrics_->add("filter_band_uncertain",
                    static_cast<double>(out.stats.band_uncertain));
    }
  }
  return results;
}

FilteredSearchResult ParallelSearchEngine::search_filtered(
    const SearchProfiles& profiles, std::size_t top_k,
    const FilterConfig& config) const {
  const SearchProfiles* group[] = {&profiles};
  std::vector<FilteredSearchResult> results =
      search_filtered_many(group, top_k, config);
  return std::move(results.front());
}

FilteredSearchResult ParallelSearchEngine::search_filtered(
    std::span<const std::uint8_t> query, const ScoringScheme& scheme,
    KernelKind kernel, std::size_t k, const FilterConfig& config,
    Backend backend) const {
  const SearchProfiles profiles(query, scheme, kernel, backend);
  return search_filtered(profiles, k, config);
}

SearchResult ParallelSearchEngine::search(std::span<const std::uint8_t> query,
                                          const ScoringScheme& scheme,
                                          KernelKind kernel,
                                          Backend backend) const {
  const SearchProfiles profiles(query, scheme, kernel, backend);
  return run(profiles, 0).result;
}

RankedSearchResult ParallelSearchEngine::search_ranked(
    std::span<const std::uint8_t> query, const ScoringScheme& scheme,
    KernelKind kernel, std::size_t k, Backend backend) const {
  const SearchProfiles profiles(query, scheme, kernel, backend);
  return run(profiles, k);
}

SearchResult ParallelSearchEngine::search(const SearchProfiles& profiles) const {
  return run(profiles, 0).result;
}

RankedSearchResult ParallelSearchEngine::search_ranked(
    const SearchProfiles& profiles, std::size_t k) const {
  return run(profiles, k);
}

RankedSearchResult ParallelSearchEngine::search_ranked(
    const SearchProfiles& profiles, std::size_t k,
    const AnnotateConfig& annotate, const KarlinAltschulParams& params) const {
  RankedSearchResult out = run(profiles, k);
  annotate_hits(
      out.hits, profiles.query(),
      [this](std::size_t index) { return record(index); }, profiles.scheme(),
      annotate, params, total_residues_, tracer_, metrics_, trace_track_);
  return out;
}

FilteredSearchResult ParallelSearchEngine::search_filtered(
    const SearchProfiles& profiles, std::size_t top_k,
    const FilterConfig& config, const AnnotateConfig& annotate,
    const KarlinAltschulParams& params) const {
  FilteredSearchResult out = search_filtered(profiles, top_k, config);
  annotate_hits(
      out.hits, profiles.query(),
      [this](std::size_t index) { return record(index); }, profiles.scheme(),
      annotate, params, total_residues_, tracer_, metrics_, trace_track_);
  return out;
}

}  // namespace swdual::align
