// Width-generic body of the inter-sequence banded screen kernel.
//
// Templated over a byte vector type V8T (simd8.h contract) and a 16-bit
// vector type V16T (simd16.h contract): every record runs the 8-bit
// saturating tier first; lanes whose score reaches the overflow guard are
// regrouped and re-screened through the 16-bit tier; lanes that saturate
// even there come back with overflow set for the caller's 32-bit scalar
// rescan. kernel_backend_*.cpp instantiate this at each compiled width.
//
// Layout is the interseq kernel's (kernel_interseq_impl.h): one database
// sequence per lane and longest-first batching with pre-sorted-order
// detection. What is new is the band: per lane the DP is restricted to
// rows i with |j − ⌊i·n_l/m⌋| ≤ band, walked column-major — and because a
// band covers only a sliver of rows, lanes are *paced*: each lane advances
// through its own columns Bresenham-style at rate n_l/n_max so that every
// lane's window stays centred on the same rows regardless of the group's
// length mix (see the comment at the step loop). Substitution scores come
// from a per-row 32-entry shuffle (lut32) on vector types that have one,
// else from a per-step gathered dprofile.
//
// Band geometry is tracked with four incremental counters per lane —
// F(v) = min{ i ≥ 1 : i·n ≥ v·m } evaluated at v = j−band, j−band+1,
// j+band, j+band+1 — advanced by Bresenham-style slack updates (one
// subtract plus an amortized add per column; a single division when a
// counter first activates), so the whole column walk costs amortized
// O(m+n) per lane with no multiplies in the steady state and no floating
// point (the counters are exact at any length ratio). The four
// values delimit, for column j:
//    window rows  [tl, bl]  = [F(j−band), min(m, F(j+band+1)−1)]
//    head run     [tl, F(j−band+1)−1]  — rows whose RIGHT band edge is j
//    tail run     [F(j+band), bl]      — rows whose LEFT band edge is j
// Head/tail rows are the band-boundary cells feeding the edge_hit
// certificate (banded.h). Rows are processed in three zones: a top fringe
// and bottom fringe whose lane masks are built with two vector compares
// against the column-relative row number (covering the edge runs and
// cross-lane raggedness; a scalar per-lane build remains as the fallback
// for union windows taller than the element type), and a bulk zone in
// between where every live lane is in-window and off-edge, so one constant
// mask register suffices and no edge tracking runs.
//
// Masking uses the vector min() operation: a lane's mask element is the
// type's max value (identity for min) when the lane is in-window, 0
// otherwise. H is masked *before* it feeds the running F register and the
// stores, which keeps the in-register F chain and the column state exactly
// equal to the scalar banded recurrence with out-of-band reads clamped to
// H=0 / E,F≤0 — clamps that provably never change an in-band H (H is
// max(…, 0) anyway). One scalar sentinel store per lane per column (zeroing
// state H just above the window top unless that row was inside the previous
// column's window) covers the only remaining stale-state read, the
// diagonal into the window's top row.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <span>
#include <type_traits>
#include <vector>

#include "align/kernel_banded.h"
#include "align/scratch.h"
#include "util/error.h"

namespace swdual::align {

namespace banded_detail {

/// F(v) = min{ i ≥ 1 : i·n ≥ v·m }, clamped to 1 for v ≤ 0 and to m+1 when
/// no row qualifies, tracked incrementally as v grows by exactly one per
/// column: the slack t = f·n − v·m stays in [0, n), so a step is one
/// subtract plus an amortized-O(m/n) add loop — no multiplies in the
/// steady state. The first v ≥ 1 (and a re-entry after the m+1 cap, where
/// t is stale) evaluates F directly.
struct BandCounter {
  std::size_t f = 1;
  std::int64_t t = -1;  ///< < 0: v has not reached 1 yet (or f is capped)

  void step(std::int64_t v, std::size_t m, std::size_t n) {
    if (v <= 0) return;
    if (f > m) return;  // capped at m+1: F only grows with v
    t -= static_cast<std::int64_t>(m);
    if (t < -static_cast<std::int64_t>(m)) {  // slack was never established
      const std::uint64_t target = static_cast<std::uint64_t>(v) * m;
      f = static_cast<std::size_t>((target + n - 1) / n);
      if (f > m) {
        f = m + 1;
        t = -2 * static_cast<std::int64_t>(m) - 1;  // keep "stale" marker
        return;
      }
      t = static_cast<std::int64_t>(static_cast<std::uint64_t>(f) * n -
                                    target);
      return;
    }
    while (t < 0) {
      if (++f > m) return;  // capped; t is stale but f never moves again
      t += static_cast<std::int64_t>(n);
    }
  }
};

/// Per-lane band state carried across columns.
struct LaneBand {
  std::size_t n = 0;        ///< lane's database length (0 = idle lane)
  BandCounter a;            ///< F(j − band)
  BandCounter b;            ///< F(j − band + 1)
  BandCounter c;            ///< F(j + band)
  BandCounter d;            ///< F(j + band + 1)
  std::size_t prev_tl = 1;  ///< previous column's window top
  std::size_t prev_bl = 0;  ///< previous column's window bottom (empty)
};

}  // namespace banded_detail

/// One tier of the banded screen over the sequences named by `order`
/// (longest-first). Results land in `out` at their original indices. When
/// `escalate` is non-null, saturated lanes are appended to it instead of
/// being flagged; when null they set out.overflow.
template <class V>
void banded_screen_pass(std::span<const std::uint8_t> query,
                        const SequenceViews& db, const ScoringScheme& scheme,
                        std::size_t band,
                        std::span<const std::uint32_t> order,
                        BandedBatchResult& out,
                        std::vector<std::uint32_t>* escalate) {
  using T = typename V::value_type;
  constexpr bool kByte = std::is_same_v<T, std::uint8_t>;
  constexpr std::size_t kL = V::kLanes;
  constexpr T kMaskOn = std::numeric_limits<T>::max();
  using namespace banded_detail;

  const ScoreMatrix& matrix = *scheme.matrix;
  const std::size_t m = query.size();
  const std::size_t asize = matrix.size();
  const std::uint8_t pad_code = static_cast<std::uint8_t>(asize);
  AlignScratch& scratch = thread_scratch();

  // Byte tier: unsigned arithmetic with biased substitution scores, exactly
  // like the striped byte kernel — H stays unbiased because the bias is
  // removed right after the diagonal add (with the free max(…,0)).
  const int bias = kByte ? std::max(0, -static_cast<int>(matrix.min_score()))
                         : 0;
  const int guard =
      255 - bias - std::max(0, static_cast<int>(matrix.max_score()));

  // Substitution rows widened to the tier's element type with one pad
  // column appended. The pad score itself is never read unmasked (exhausted
  // lanes are masked everywhere), so 0 is safe for both tiers. Byte-tier
  // rows are zero-padded to a 32-byte stride whenever the alphabet (incl.
  // the pad code) fits, so vector types with a lut32 byte shuffle can look
  // a row up directly with the lane codes — that skips the dprofile build,
  // whose asize×kL scalar stores amortize poorly over a band's few window
  // rows (the full-matrix interseq kernel amortizes them over m rows).
  constexpr bool kHasLut =
      requires(const std::uint8_t* t, V x) { V::lut32(t, x); };
  const std::size_t ext_stride = (kByte && asize < 32) ? 32 : asize + 1;
  T* ext_rows;
  if constexpr (kByte) {
    ext_rows = scratch.banded_ext_rows_u8(asize * ext_stride);
  } else {
    ext_rows = scratch.interseq_ext_rows(asize * ext_stride);
  }
  for (std::size_t a = 0; a < asize; ++a) {
    const std::int8_t* row = matrix.row(static_cast<std::uint8_t>(a));
    T* dst = ext_rows + a * ext_stride;
    for (std::size_t c = 0; c < asize; ++c) {
      dst[c] = static_cast<T>(row[c] + bias);
    }
    for (std::size_t c = asize; c < ext_stride; ++c) dst[c] = 0;
  }
  const bool use_lut = kHasLut && ext_stride == 32;

  T* dprofile;
  if constexpr (kByte) {
    dprofile = scratch.banded_dprofile_u8(asize * kL);
  } else {
    dprofile = scratch.interseq_dprofile(asize * kL);
  }

  const V v_gap_extend = V::splat(static_cast<T>(scheme.gap.extend));
  const V v_gap_open_extend =
      V::splat(static_cast<T>(scheme.gap.open + scheme.gap.extend));
  const V v_bias = V::splat(static_cast<T>(bias));

  for (std::size_t group_start = 0; group_start < order.size();
       group_start += kL) {
    const std::size_t lanes_used = std::min(kL, order.size() - group_start);
    const std::uint8_t* lane_seq[kL];
    LaneBand lane[kL];
    std::size_t max_len = 0;
    for (std::size_t l = 0; l < kL; ++l) {
      if (l < lanes_used) {
        const auto& seq = db[order[group_start + l]];
        lane_seq[l] = seq.data();
        lane[l].n = seq.size();
        max_len = std::max(max_len, seq.size());
      } else {
        lane_seq[l] = nullptr;
        lane[l].n = 0;
      }
    }
    if (max_len == 0) continue;  // all-empty group: scores stay 0

    T* state_h;
    T* state_e;
    if constexpr (kByte) {
      const AlignScratch::BandedStateU8 state =
          scratch.banded_state_u8(m * kL);
      state_h = state.h;
      state_e = state.e;
    } else {
      const AlignScratch::InterSeqState state = scratch.interseq_state(m * kL);
      state_h = state.h;
      state_e = state.e;
    }

    V v_max = V::zero();
    V v_edge = V::zero();

    alignas(64) T bulk_mask_arr[kL];
    alignas(64) T act_arr[kL];
    alignas(64) T mask_row[kL];
    alignas(64) T edge_row[kL];
    alignas(64) std::uint8_t codes[kL];
    std::size_t tl[kL], bl[kL], head_hi[kL], tail_lo[kL];
    std::size_t jcol[kL] = {};  // columns consumed per lane
    std::size_t acc[kL] = {};   // Bresenham pacing accumulator
    for (std::size_t l = 0; l < kL; ++l) codes[l] = pad_code;

    // Lanes are paced through their own columns Bresenham-style: lane l
    // advances exactly on the steps where floor(s·n_l/n_max) grows, so
    // after step s it sits at column ≈ s·n_l/n_max and its band window is
    // centred near row s·m/n_max — the same rows as every other lane in
    // the group, whatever the length mix. (Marching every lane through one
    // absolute column index instead lets the windows drift apart linearly
    // — centres j·m/n_l — ballooning the union row range until most vector
    // work is masked off.) Pacing changes nothing per lane: each still
    // walks its columns 1..n_l in order with identical windows and
    // arithmetic, so scores stay bit-identical; lanes idle on a step keep
    // their state through blended stores.
    for (std::size_t s = 1; s <= max_len; ++s) {
      // Band geometry for the lanes that advance this step: bump the four
      // F counters, derive the window, the genuine edge runs (a boundary
      // column with no outside neighbour — j = 1 for the left edge, j = n
      // for the right — is a matrix edge, not a band edge), and the
      // cross-lane zone boundaries.
      std::size_t row_lo = m + 1;
      std::size_t row_hi = 0;
      std::size_t bulk_lo = 1;
      std::size_t bulk_hi = m;
      bool all_active = true;
      const std::int64_t sband = static_cast<std::int64_t>(band);
      // Geometry is a pure function of (m, band, n, step), and pacing makes
      // every lane of equal length march in lockstep — so within the
      // longest-first group, a lane whose length equals its left
      // neighbour's replays the neighbour's outcome verbatim instead of
      // stepping its own counters. Real databases are full of equal-length
      // runs (and sorting makes them adjacent), which turns the dominant
      // scalar-geometry cost into a per-distinct-length cost.
      std::size_t share_n = std::numeric_limits<std::size_t>::max();
      int share_kind = 0;  // 0 = no column this step, 1 = window, 2 = empty
      std::size_t share_j = 0, share_tl = 0, share_bl = 0, share_head = 0,
                  share_tail = 0, share_r0 = 0;
      bool share_sentinel = false;
      for (std::size_t l = 0; l < kL; ++l) {
        bulk_mask_arr[l] = 0;
        act_arr[l] = 0;
        LaneBand& L = lane[l];
        if (L.n == share_n) {  // same length as lane l−1: replay its outcome
          if (share_kind == 0) {
            all_active = false;
            tl[l] = 1;
            bl[l] = 0;
            continue;
          }
          act_arr[l] = static_cast<T>(-1);
          codes[l] = lane_seq[l][share_j - 1];
          if (share_kind == 2) {
            tl[l] = 1;
            bl[l] = 0;
            continue;
          }
          out.cells += share_bl - share_tl + 1;
          tl[l] = share_tl;
          bl[l] = share_bl;
          head_hi[l] = share_head;
          tail_lo[l] = share_tail;
          bulk_mask_arr[l] = kMaskOn;
          if (share_sentinel) state_h[(share_r0 - 1) * kL + l] = 0;
          continue;
        }
        share_n = L.n;
        share_kind = 0;
        share_sentinel = false;
        if (jcol[l] >= L.n) {  // exhausted (or idle) lane
          all_active = false;
          tl[l] = 1;
          bl[l] = 0;
          continue;
        }
        acc[l] += L.n;
        if (acc[l] < max_len) {  // paced out this step
          all_active = false;
          tl[l] = 1;
          bl[l] = 0;
          continue;
        }
        acc[l] -= max_len;
        const std::size_t j = ++jcol[l];
        act_arr[l] = static_cast<T>(-1);  // all-ones: blend() needs full masks
        codes[l] = lane_seq[l][j - 1];
        share_j = j;
        const std::int64_t sj = static_cast<std::int64_t>(j);
        L.a.step(sj - sband, m, L.n);
        L.b.step(sj - sband + 1, m, L.n);
        L.c.step(sj + sband, m, L.n);
        L.d.step(sj + sband + 1, m, L.n);
        const std::size_t w_tl = L.a.f;
        const std::size_t w_bl = std::min(m, L.d.f - 1);
        if (w_tl > w_bl) {  // window empty at this column (very ragged n≫m)
          share_kind = 2;
          L.prev_tl = w_tl;
          L.prev_bl = w_bl;
          tl[l] = 1;
          bl[l] = 0;
          continue;
        }
        share_kind = 1;
        out.cells += w_bl - w_tl + 1;
        tl[l] = w_tl;
        bl[l] = w_bl;
        head_hi[l] = j + 1 <= L.n ? std::min(w_bl, L.b.f - 1) : 0;
        tail_lo[l] = j >= 2 ? std::max(w_tl, L.c.f) : m + 1;
        share_tl = w_tl;
        share_bl = w_bl;
        share_head = head_hi[l];
        share_tail = tail_lo[l];
        bulk_mask_arr[l] = kMaskOn;
        row_lo = std::min(row_lo, w_tl);
        row_hi = std::max(row_hi, w_bl);
        bulk_lo = std::max(bulk_lo, std::max(w_tl, head_hi[l] + 1));
        bulk_hi = std::min(bulk_hi, std::min(w_bl, tail_lo[l] - 1));

        // Sentinel: the diagonal into this lane's window top reads state H
        // one row above it; zero it unless the previous column wrote it as
        // a genuine in-window value.
        if (w_tl >= 2) {
          const std::size_t r0 = w_tl - 1;
          if (!(L.prev_tl <= r0 && r0 <= L.prev_bl)) {
            share_sentinel = true;
            share_r0 = r0;
            state_h[(r0 - 1) * kL + l] = 0;
          }
        }
        L.prev_tl = w_tl;
        L.prev_bl = w_bl;
      }
      if (row_lo > row_hi) continue;  // no live window anywhere this step
      if (bulk_lo > bulk_hi) {        // no common off-edge zone: all fringe
        bulk_lo = row_hi + 1;
        bulk_hi = row_hi;
      }

      // This step's database residues (stale entries of idle lanes are
      // masked everywhere), as a code vector feeding the per-row lut32
      // lookup or gathered into the dprofile.
      V v_codes = V::zero();
      if constexpr (kByte && kHasLut) {
        if (use_lut) v_codes = V::load(codes);
      }
      if (!use_lut) {
        for (std::size_t a = 0; a < asize; ++a) {
          const T* ext = ext_rows + a * ext_stride;
          T* dst = dprofile + a * kL;
          for (std::size_t l = 0; l < kL; ++l) dst[l] = ext[codes[l]];
        }
      }
      const V v_act = V::load(act_arr);

      // Fringe masks are normally built with two vector compares against
      // the column-relative row number rr = r − row_lo + 1 (rr ≥ 1, so 0 is
      // a safe "never" for head runs and kMaskOn for empty windows — rr
      // never reaches it under the span guard below). Only when the union
      // window is taller than the element type can express does the scalar
      // per-lane build run instead.
      const bool vec_fringe =
          row_hi - row_lo + 2 < static_cast<std::size_t>(kMaskOn);
      V v_tl_rel = V::zero();
      V v_bl_rel = V::zero();
      V v_head_rel = V::zero();
      V v_tail_rel = V::zero();
      if (vec_fringe) {
        alignas(64) T tl_rel[kL], bl_rel[kL], head_rel[kL], tail_rel[kL];
        for (std::size_t l = 0; l < kL; ++l) {
          if (bulk_mask_arr[l] == 0) {  // empty window: match no row
            tl_rel[l] = kMaskOn;
            bl_rel[l] = 0;
            head_rel[l] = 0;
            tail_rel[l] = kMaskOn;
            continue;
          }
          tl_rel[l] = static_cast<T>(tl[l] - row_lo + 1);
          bl_rel[l] = static_cast<T>(bl[l] - row_lo + 1);
          head_rel[l] = head_hi[l] >= row_lo
                            ? static_cast<T>(head_hi[l] - row_lo + 1)
                            : 0;
          tail_rel[l] = tail_lo[l] <= row_hi
                            ? static_cast<T>(tail_lo[l] - row_lo + 1)
                            : kMaskOn;
        }
        v_tl_rel = V::load(tl_rel);
        v_bl_rel = V::load(bl_rel);
        v_head_rel = V::load(head_rel);
        v_tail_rel = V::load(tail_rel);
      }

      V v_diag = row_lo >= 2 ? V::load(state_h + (row_lo - 2) * kL)
                             : V::zero();
      V v_f = V::zero();

      const auto process_row = [&](std::size_t r, V v_mask, V v_edge_mask,
                                   bool track_edge) {
        V v_score;
        if constexpr (kByte && kHasLut) {
          v_score = use_lut ? V::lut32(ext_rows + query[r - 1] * 32, v_codes)
                            : V::load(dprofile + query[r - 1] * kL);
        } else {
          v_score = V::load(dprofile + query[r - 1] * kL);
        }
        const V v_h_prev = V::load(state_h + (r - 1) * kL);
        const V v_e_prev = V::load(state_e + (r - 1) * kL);
        const V v_e = max(subs(v_e_prev, v_gap_extend),
                          subs(v_h_prev, v_gap_open_extend));
        V v_h;
        if constexpr (kByte) {
          v_h = subs(adds(v_diag, v_score), v_bias);
        } else {
          v_h = adds(v_diag, v_score);
        }
        v_h = max(v_h, v_e);
        v_h = max(v_h, v_f);
        if constexpr (!kByte) v_h = max(v_h, V::zero());
        const V v_hm = min(v_h, v_mask);
        v_max = max(v_max, v_hm);
        if (track_edge) v_edge = max(v_edge, min(v_hm, v_edge_mask));
        v_diag = v_h_prev;
        if (all_active) {
          v_hm.store(state_h + (r - 1) * kL);
          min(v_e, v_mask).store(state_e + (r - 1) * kL);
        } else {
          // Idle lanes keep their state untouched this step.
          blend(v_act, v_hm, v_h_prev).store(state_h + (r - 1) * kL);
          blend(v_act, min(v_e, v_mask), v_e_prev)
              .store(state_e + (r - 1) * kL);
        }
        // The masked H keeps the running F register correct through
        // out-of-window rows: those contribute at most subs(0, gs+ge) ≤ 0.
        v_f = max(subs(v_f, v_gap_extend), subs(v_hm, v_gap_open_extend));
      };

      const auto fringe_row = [&](std::size_t r) {
        if (vec_fringe) {
          const V v_rr = V::splat(static_cast<T>(r - row_lo + 1));
          const V v_win = bit_and(ge(v_rr, v_tl_rel), ge(v_bl_rel, v_rr));
          const V v_run = bit_and(
              v_win, bit_or(ge(v_head_rel, v_rr), ge(v_rr, v_tail_rel)));
          if constexpr (kByte) {
            // All-ones == kMaskOn for unsigned bytes: masks are ready.
            process_row(r, v_win, v_run, true);
          } else {
            // Signed all-ones is −1; clamp the masks to the min() identity.
            const V v_on = V::splat(kMaskOn);
            process_row(r, bit_and(v_win, v_on), bit_and(v_run, v_on), true);
          }
          return;
        }
        for (std::size_t l = 0; l < kL; ++l) {
          const bool on =
              bulk_mask_arr[l] != 0 && tl[l] <= r && r <= bl[l];
          mask_row[l] = on ? kMaskOn : 0;
          edge_row[l] =
              on && (r <= head_hi[l] || r >= tail_lo[l]) ? kMaskOn : 0;
        }
        process_row(r, V::load(mask_row), V::load(edge_row), true);
      };

      for (std::size_t r = row_lo; r < bulk_lo; ++r) fringe_row(r);
      if (bulk_lo <= bulk_hi) {
        const V v_bulk = V::load(bulk_mask_arr);
        for (std::size_t r = bulk_lo; r <= bulk_hi; ++r) {
          process_row(r, v_bulk, V::zero(), false);
        }
      }
      for (std::size_t r = bulk_hi + 1; r <= row_hi; ++r) fringe_row(r);
    }

    for (std::size_t l = 0; l < lanes_used; ++l) {
      const std::uint32_t original = order[group_start + l];
      const int best = static_cast<int>(v_max.lane(l));
      const bool saturated =
          kByte ? best >= guard
                : best >= std::numeric_limits<std::int16_t>::max();
      if (saturated && escalate != nullptr) {
        escalate->push_back(original);
        continue;
      }
      out.scores[original] = best;
      out.overflow[original] = saturated;
      out.edge_hit[original] =
          best > 0 && static_cast<int>(v_edge.lane(l)) == best;
    }
  }
}

/// Full banded screen: 8-bit tier, 16-bit escalation, overflow flags for
/// the caller's 32-bit scalar rescan.
template <class V8T, class V16T>
BandedBatchResult banded_screen_impl(std::span<const std::uint8_t> query,
                                     const SequenceViews& db,
                                     const ScoringScheme& scheme,
                                     std::size_t band) {
  SWDUAL_REQUIRE(band >= 1, "band half-width must be at least 1");
  BandedBatchResult result;
  result.scores.assign(db.size(), 0);
  result.overflow.assign(db.size(), false);
  result.edge_hit.assign(db.size(), false);
  if (query.empty() || db.empty()) return result;

  // Longest-first batching with the interseq kernel's pre-sorted-order
  // detection (SWDB v2 lane-batch indexes and sorting engines deliver
  // descending-length batches already).
  AlignScratch& scratch = thread_scratch();
  AlignedVector<std::uint32_t>& order = scratch.banded_order();
  order.resize(db.size());
  std::iota(order.begin(), order.end(), 0u);
  bool presorted = true;
  for (std::size_t i = 1; i < db.size(); ++i) {
    if (db[i - 1].size() < db[i].size()) {
      presorted = false;
      break;
    }
  }
  if (!presorted) {
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return db[a].size() > db[b].size();
                     });
  }

  std::vector<std::uint32_t> escalate;
  banded_screen_pass<V8T>(query, db, scheme, band,
                          {order.data(), order.size()}, result, &escalate);
  if (!escalate.empty()) {
    // `escalate` is a subsequence of `order`, so it is already
    // longest-first; regroup it at the 16-bit lane width.
    banded_screen_pass<V16T>(query, db, scheme, band,
                             {escalate.data(), escalate.size()}, result,
                             nullptr);
  }
  return result;
}

}  // namespace swdual::align
