// Scalar backend: the width-generic kernels instantiated on the emulated
// vector types at the narrowest geometry (16×u8 / 8×i16 — the same striped
// layout as SSE2, so profiles are interchangeable between the two). Always
// compiled; serves as the portable fallback and as the reference
// implementation the wide backends are validated against.
#include "align/kernel_banded_impl.h"
#include "align/kernel_dispatch.h"
#include "align/kernel_interseq_impl.h"
#include "align/kernel_striped8_impl.h"
#include "align/kernel_striped_impl.h"
#include "align/simd_scalar.h"

namespace swdual::align::detail {

namespace {

const KernelTable kTable = {
    &striped8_score_impl<VecU8Scalar<16>>,
    &striped_score_impl<VecI16Scalar<8>>,
    &interseq_scores_impl<VecI16Scalar<8>>,
    &banded_screen_impl<VecU8Scalar<16>, VecI16Scalar<8>>,
};

}  // namespace

const KernelTable* scalar_kernel_table() { return &kTable; }

}  // namespace swdual::align::detail
