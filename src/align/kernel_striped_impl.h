// Width-generic body of the 16-bit striped kernel.
//
// Templated over any vector type V satisfying the simd16.h interface
// contract; one body serves the scalar, SSE2, AVX2 and AVX-512BW backends
// (kernel_backend_*.cpp each instantiate it at their width). The striped
// segment layout is derived from V::kLanes and the profile must have been
// built with the same lane count; the resulting score and overflow decision
// are lane-count independent (see DESIGN.md "SIMD backends & dispatch").
#pragma once

#include <cstdint>
#include <limits>
#include <span>

#include "align/kernel_striped.h"
#include "align/profile.h"
#include "align/scratch.h"
#include "util/error.h"

namespace swdual::align {

template <class V>
StripedResult striped_score_impl(const StripedProfile& profile,
                                 std::span<const std::uint8_t> db,
                                 const GapPenalty& gap) {
  constexpr std::size_t kL = V::kLanes;
  SWDUAL_REQUIRE(profile.lanes() == kL,
                 "striped profile lane count does not match the kernel width");
  // A zero extension penalty would let a dominated-but-constant F chain spin
  // the lazy-F loop forever; the scalar oracle handles that configuration.
  SWDUAL_REQUIRE(gap.extend >= 1,
                 "striped kernel requires gap.extend >= 1");
  SWDUAL_REQUIRE(gap.open >= 0, "gap penalties are positive magnitudes");
  StripedResult result;
  const std::size_t seg_len = profile.segment_length();
  result.cells =
      static_cast<std::uint64_t>(profile.query_length()) * db.size();
  if (db.empty() || profile.query_length() == 0) return result;

  const V v_gap_extend = V::splat(static_cast<std::int16_t>(gap.extend));
  const V v_gap_open_extend =
      V::splat(static_cast<std::int16_t>(gap.open + gap.extend));
  const V v_gap_open = V::splat(static_cast<std::int16_t>(gap.open));
  const V v_zero = V::zero();

  // H and E, striped over the query; double-buffered H (load = column j-1,
  // store = column j). All state starts at 0 — safe for local alignment
  // because H >= 0 everywhere and E/F chains seeded from 0 never beat the
  // true recurrence (gap penalties are subtracted from 0 immediately).
  // Rows live in the per-thread workspace, zeroed here, capacity reused.
  const AlignScratch::RowsI16 rows = thread_scratch().rows_i16(seg_len * kL);
  std::int16_t* h_load = rows.h_load;
  std::int16_t* h_store = rows.h_store;
  std::int16_t* e_ptr = rows.e;

  V v_max = V::zero();

  for (std::size_t j = 0; j < db.size(); ++j) {
    const std::int16_t* scores = profile.row(db[j]);
    V v_f = V::zero();
    // Diagonal seed: H[last segment] of column j-1, lanes shifted up so each
    // lane reads the previous query position; lane 0 gets the H=0 boundary.
    V v_h = V::load(h_load + (seg_len - 1) * kL).shift_lanes_up(0);

    for (std::size_t s = 0; s < seg_len; ++s) {
      v_h = adds(v_h, V::load(scores + s * kL));
      const V v_e = V::load(e_ptr + s * kL);
      v_h = max(v_h, v_e);
      v_h = max(v_h, v_f);
      v_h = max(v_h, v_zero);
      v_max = max(v_max, v_h);
      v_h.store(h_store + s * kL);

      const V v_h_gap = subs(v_h, v_gap_open_extend);
      max(subs(v_e, v_gap_extend), v_h_gap).store(e_ptr + s * kL);
      v_f = max(subs(v_f, v_gap_extend), v_h_gap);

      v_h = V::load(h_load + s * kL);
    }

    // Lazy F (Farrar): propagate vertical-gap chains that wrap across lanes.
    // Continue while F strictly beats re-opening a gap from H at the current
    // segment (once dominated everywhere, every later contribution of this
    // chain is dominated by an H-seeded chain the main loop already carried).
    // E is refreshed from corrected H so Eq. (3) sees final column values.
    // The shifted-in lane must be "minus infinity": a 0 fill would compare
    // greater than H−(Gs+Ge) whenever H is small and spin this loop forever.
    constexpr std::int16_t kNoGapChain = -30000;
    v_f = v_f.shift_lanes_up(kNoGapChain);
    std::size_t s = 0;
    // Mispredict shield (see the byte kernel for the measurements): the
    // correction fires on a third to half of all columns but usually runs
    // ~2 steps, so the first steps run unconditionally — the body only
    // max-merges F-derived candidates, which are true lower bounds of the
    // DP cell values, so it is a no-op when no correction was due.
    constexpr std::size_t kLazyFUnconditional = 2;
    const std::size_t unchecked =
        seg_len < kLazyFUnconditional ? seg_len : kLazyFUnconditional;
    for (; s < unchecked; ++s) {
      const V v_h_cur = max(V::load(h_store + s * kL), v_f);
      v_h_cur.store(h_store + s * kL);
      v_max = max(v_max, v_h_cur);
      const V v_h_gap = subs(v_h_cur, v_gap_open_extend);
      max(V::load(e_ptr + s * kL), v_h_gap).store(e_ptr + s * kL);
      v_f = subs(v_f, v_gap_extend);
    }
    if (s >= seg_len) {
      s = 0;
      v_f = v_f.shift_lanes_up(kNoGapChain);
    }
    // Exit threshold H − open (not H − open − extend) is exact: H(s) moves
    // only when F > H(s); the stored E(s) is already ≥ H(s) − open − extend
    // so it moves only when F > E(s) + open + extend ≥ H(s); and once every
    // lane has F ≤ H(s) − open the carry stays dominated at every later
    // segment, because F − extend ≤ H(s) − open − extend is a value the
    // segment loop already folded into F(s+1).
    while (any_gt(v_f, subs(V::load(h_store + s * kL), v_gap_open))) {
      const V v_h_cur = max(V::load(h_store + s * kL), v_f);
      v_h_cur.store(h_store + s * kL);
      v_max = max(v_max, v_h_cur);
      const V v_h_gap = subs(v_h_cur, v_gap_open_extend);
      max(V::load(e_ptr + s * kL), v_h_gap).store(e_ptr + s * kL);
      v_f = subs(v_f, v_gap_extend);
      if (++s >= seg_len) {
        s = 0;
        v_f = v_f.shift_lanes_up(kNoGapChain);
      }
    }

    std::swap(h_load, h_store);
  }

  const std::int16_t best = v_max.hmax();
  // Overflow guard band. adds() saturates, so a clamped H is exactly
  // INT16_MAX — but a *legitimate* score of INT16_MAX is indistinguishable
  // from a clamp, and any cell within max_score of the ceiling cannot be
  // proven clamp-free. Conversely, if the maximum stays below
  // INT16_MAX − max_score, no add can ever have saturated (each add raises H
  // by at most max_score and every stored H passed through v_max), so the
  // result is provably exact. Anything inside the band is conservatively
  // reported as overflow and rescanned by the driver.
  const std::int16_t guard = static_cast<std::int16_t>(
      std::numeric_limits<std::int16_t>::max() - profile.max_score());
  result.overflow = best >= guard;
  result.score = best;
  return result;
}

}  // namespace swdual::align
