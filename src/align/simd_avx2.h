// AVX2 vector types: 32 unsigned-byte lanes (V8x32) and 16 signed-16-bit
// lanes (V16x16), implementing the interface contract of simd8.h / simd16.h.
//
// This header is intentionally empty unless the including translation unit
// is compiled with AVX2 enabled (-mavx2 or -march that implies it); only
// src/align/kernel_backend_avx2.cpp and the wide-wrapper test do that, so
// the rest of the build never depends on AVX2 codegen. Whether the *CPU*
// can run these types is a separate runtime question answered by
// align::backend_available(Backend::kAVX2).
//
// The only non-obvious operation is shift_lanes_up: _mm256 byte shifts work
// per 128-bit half, so the byte that must cross the half boundary is
// carried over with a permute + alignr pair (the standard AVX2 idiom, used
// by parasail and SSW): first build t = [a.lo, 0] (each half's predecessor
// half, zero below lane 0), then alignr picks the crossing byte from t.
#pragma once

#if defined(__AVX2__)

#include <algorithm>
#include <cstdint>
#include <immintrin.h>

#define SWDUAL_SIMD_AVX2 1

namespace swdual::align {

/// 32-lane unsigned byte vector (AVX2).
struct V8x32 {
  static constexpr std::size_t kLanes = 32;
  using value_type = std::uint8_t;

  __m256i v;

  static V8x32 zero() { return {_mm256_setzero_si256()}; }
  static V8x32 splat(std::uint8_t x) {
    return {_mm256_set1_epi8(static_cast<char>(x))};
  }
  static V8x32 load(const std::uint8_t* p) {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  void store(std::uint8_t* p) const {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  friend V8x32 adds(V8x32 a, V8x32 b) {
    return {_mm256_adds_epu8(a.v, b.v)};
  }
  friend V8x32 subs(V8x32 a, V8x32 b) {
    return {_mm256_subs_epu8(a.v, b.v)};
  }
  friend V8x32 max(V8x32 a, V8x32 b) { return {_mm256_max_epu8(a.v, b.v)}; }
  friend V8x32 min(V8x32 a, V8x32 b) { return {_mm256_min_epu8(a.v, b.v)}; }
  friend bool any_gt(V8x32 a, V8x32 b) {
    const __m256i diff = _mm256_subs_epu8(a.v, b.v);
    return _mm256_movemask_epi8(
               _mm256_cmpeq_epi8(diff, _mm256_setzero_si256())) != -1;
  }
  /// All-ones mask where a >= b lane-wise (unsigned), 0 elsewhere.
  friend V8x32 ge(V8x32 a, V8x32 b) {
    // a >= b  <=>  subs(b, a) == 0 in that lane.
    return {_mm256_cmpeq_epi8(_mm256_subs_epu8(b.v, a.v),
                              _mm256_setzero_si256())};
  }
  friend V8x32 bit_and(V8x32 a, V8x32 b) {
    return {_mm256_and_si256(a.v, b.v)};
  }
  friend V8x32 bit_or(V8x32 a, V8x32 b) {
    return {_mm256_or_si256(a.v, b.v)};
  }
  /// Lane-wise select: a where mask is all-ones, b where mask is 0.
  friend V8x32 blend(V8x32 mask, V8x32 a, V8x32 b) {
    return {_mm256_blendv_epi8(b.v, a.v, mask.v)};
  }
  /// Per-lane lookup into a 32-entry byte table; every idx lane must be < 32.
  /// vpshufb indexes within 16-byte halves, so the table's two halves are
  /// broadcast to both 128-bit lanes and bit 4 of the index selects between
  /// them (moved to bit 7, the blendv selector, with a shift).
  static V8x32 lut32(const std::uint8_t* table, V8x32 idx) {
    const __m256i lo = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(table)));
    const __m256i hi = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(table + 16)));
    const __m256i pick_lo = _mm256_shuffle_epi8(lo, idx.v);
    const __m256i pick_hi = _mm256_shuffle_epi8(hi, idx.v);
    return {_mm256_blendv_epi8(pick_lo, pick_hi,
                               _mm256_slli_epi16(idx.v, 3))};
  }
  V8x32 shift_lanes_up() const {
    const __m256i t = _mm256_permute2x128_si256(v, v, 0x08);  // [a.lo, 0]
    return {_mm256_alignr_epi8(v, t, 15)};
  }
  std::uint8_t lane(std::size_t i) const {
    alignas(32) std::uint8_t tmp[32];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), v);
    return tmp[i];
  }
  std::uint8_t hmax() const {
    alignas(32) std::uint8_t tmp[32];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), v);
    return *std::max_element(tmp, tmp + 32);
  }
};

/// 16-lane signed 16-bit vector (AVX2).
struct V16x16 {
  static constexpr std::size_t kLanes = 16;
  using value_type = std::int16_t;

  __m256i v;

  static V16x16 zero() { return {_mm256_setzero_si256()}; }
  static V16x16 splat(std::int16_t x) { return {_mm256_set1_epi16(x)}; }
  static V16x16 load(const std::int16_t* p) {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  void store(std::int16_t* p) const {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  friend V16x16 adds(V16x16 a, V16x16 b) {
    return {_mm256_adds_epi16(a.v, b.v)};
  }
  friend V16x16 subs(V16x16 a, V16x16 b) {
    return {_mm256_subs_epi16(a.v, b.v)};
  }
  friend V16x16 max(V16x16 a, V16x16 b) {
    return {_mm256_max_epi16(a.v, b.v)};
  }
  friend V16x16 min(V16x16 a, V16x16 b) {
    return {_mm256_min_epi16(a.v, b.v)};
  }
  friend bool any_gt(V16x16 a, V16x16 b) {
    return _mm256_movemask_epi8(_mm256_cmpgt_epi16(a.v, b.v)) != 0;
  }
  /// All-ones mask where a >= b lane-wise (signed), 0 elsewhere.
  friend V16x16 ge(V16x16 a, V16x16 b) {
    // a >= b  <=>  max(a, b) == a in that lane.
    return {_mm256_cmpeq_epi16(_mm256_max_epi16(a.v, b.v), a.v)};
  }
  friend V16x16 bit_and(V16x16 a, V16x16 b) {
    return {_mm256_and_si256(a.v, b.v)};
  }
  friend V16x16 bit_or(V16x16 a, V16x16 b) {
    return {_mm256_or_si256(a.v, b.v)};
  }
  /// Lane-wise select: a where mask is all-ones, b where mask is 0 (the
  /// byte-granular blendv is fine: mask bytes are uniform within a lane).
  friend V16x16 blend(V16x16 mask, V16x16 a, V16x16 b) {
    return {_mm256_blendv_epi8(b.v, a.v, mask.v)};
  }
  V16x16 shift_lanes_up(std::int16_t fill) const {
    const __m256i t = _mm256_permute2x128_si256(v, v, 0x08);  // [a.lo, 0]
    V16x16 out{_mm256_alignr_epi8(v, t, 14)};
    out.v = _mm256_insert_epi16(out.v, fill, 0);
    return out;
  }
  std::int16_t lane(std::size_t i) const {
    alignas(32) std::int16_t tmp[16];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), v);
    return tmp[i];
  }
  std::int16_t hmax() const {
    alignas(32) std::int16_t tmp[16];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), v);
    std::int16_t best = tmp[0];
    for (int i = 1; i < 16; ++i) best = std::max(best, tmp[i]);
    return best;
  }
  void set_lane(std::size_t i, std::int16_t x) {
    alignas(32) std::int16_t tmp[16];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), v);
    tmp[i] = x;
    v = _mm256_load_si256(reinterpret_cast<const __m256i*>(tmp));
  }
};

}  // namespace swdual::align

#endif  // __AVX2__
