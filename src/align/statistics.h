// Karlin–Altschul statistics: E-values and bit scores for search hits.
//
// A raw Smith–Waterman score is meaningless without knowing how often chance
// alone produces it. Local alignment scores of random sequences follow an
// extreme-value (Gumbel) law: E(S) = K·m·n·e^(−λS). For ungapped scoring, λ
// is the unique positive root of Σ p_a p_b e^{λ·s(a,b)} = 1 (Karlin &
// Altschul 1990), computable analytically. For gapped scoring no closed form
// exists; like BLAST and SSEARCH we calibrate (λ, K) empirically from the
// score distribution of random sequence pairs.
#pragma once

#include <cstdint>
#include <vector>

#include "align/scoring.h"

namespace swdual::align {

/// Gumbel parameters of a scoring system.
struct KarlinAltschulParams {
  double lambda = 0.0;  ///< scale (nats per score unit)
  double k = 0.0;       ///< search-space prefactor
};

/// Solve Σ p_a p_b e^{λ s(a,b)} = 1 for the ungapped λ of `matrix` under
/// residue background frequencies `freqs` (one entry per alphabet code the
/// matrix scores; codes beyond freqs.size() are ignored). Throws
/// InvalidArgument unless the expected score is negative and some score is
/// positive (the Karlin–Altschul regime).
double solve_ungapped_lambda(const ScoreMatrix& matrix,
                             const std::vector<double>& freqs);

/// Empirically calibrate gapped (λ, K) for a scoring scheme by aligning
/// `samples` random sequence pairs of size ref_m × ref_n drawn from `freqs`
/// and fitting a Gumbel with the method of moments. Deterministic in `seed`.
KarlinAltschulParams calibrate_gapped_params(
    const ScoringScheme& scheme, const std::vector<double>& freqs,
    std::size_t ref_m = 200, std::size_t ref_n = 200,
    std::size_t samples = 200, std::uint64_t seed = 1);

/// Expected number of chance hits with score ≥ `score` in an m×n search.
double evalue(const KarlinAltschulParams& params, int score, std::uint64_t m,
              std::uint64_t n);

/// Probability of at least one chance hit with score ≥ `score`.
double pvalue(const KarlinAltschulParams& params, int score, std::uint64_t m,
              std::uint64_t n);

/// Normalized bit score: (λ·S − ln K) / ln 2.
double bit_score(const KarlinAltschulParams& params, int score);

}  // namespace swdual::align
