// Myers–Miller linear-space alignment (Hirschberg divide and conquer).
//
// nw_align_affine / sw_align_affine keep Θ(m·n) DP matrices; the classic
// remedy (Myers & Miller 1988, the algorithm behind the cluster codes the
// paper cites as space-optimal [3]) recovers an *optimal* alignment in
// Θ(min(m,n)) memory: split the query at its midpoint, run a forward
// score-only pass over the top half and a reverse pass over the bottom
// half, find the database column (and gap state) where an optimal path
// crosses, and recurse on the two subproblems. Affine gaps are handled by
// tracking, at every boundary, whether a vertical gap is already open
// (Myers & Miller's tb/te parameters), so a gap spanning the split pays its
// open penalty exactly once.
#pragma once

#include <cstdint>
#include <span>

#include "align/alignment.h"
#include "align/scoring.h"

namespace swdual::align {

/// Global affine-gap alignment in linear space. Score-identical to
/// nw_align_affine; memory Θ(n) instead of Θ(m·n).
Alignment nw_align_affine_linear(std::span<const std::uint8_t> query,
                                 std::span<const std::uint8_t> db,
                                 const ScoringScheme& scheme);

/// Local affine-gap alignment in linear space: locate the optimal region
/// with two O(n)-memory passes (align/locate.h), then align the region
/// globally with the linear-space routine. Score-identical to
/// sw_align_affine with memory Θ(n + region width).
Alignment sw_align_affine_linear(std::span<const std::uint8_t> query,
                                 std::span<const std::uint8_t> db,
                                 const ScoringScheme& scheme);

}  // namespace swdual::align
