// Banded Smith–Waterman (heuristic accelerator).
//
// Restricts the DP to a diagonal band of half-width `band` around the line
// j = ⌊i·n/m⌋. Exact when the optimal local alignment stays inside the band
// (the common case for homologous sequences of similar length); otherwise a
// lower bound on the true score. Cost drops from O(m·n) to O(m·band).
//
// Two certificates ride along with the score (the two-stage filter pipeline
// in search.h is built on them — see DESIGN.md "Two-stage filtered search"):
//
//   * `exact` is the *sound* certificate: true only when the band covers the
//     whole DP matrix (banded_covers_all), so the banded score provably
//     equals the full Gotoh score and the record needs no exact rescan. A
//     boundary-clean best path alone is NOT sufficient — a disjoint local
//     alignment can live entirely outside the band without ever touching it.
//   * `edge_hit` is the *uncertainty* flag: the best banded score was
//     attained on a band-boundary cell, so the true optimum plausibly
//     continues outside the band and the heuristic filter must keep the
//     record as a rescan candidate regardless of its screened rank.
#pragma once

#include <cstdint>
#include <span>

#include "align/scoring.h"

namespace swdual::align {

/// Result of a banded score-only local alignment.
struct BandedResult {
  int score = 0;              ///< banded similarity (lower bound on exact)
  std::size_t end_query = 0;  ///< 1-based query index of the best cell
  std::size_t end_db = 0;     ///< 1-based database index of the best cell
  std::uint64_t cells = 0;    ///< DP cells computed (for GCUPS accounting)
  bool exact = false;         ///< band covered the full matrix: score is exact
  bool edge_hit = false;      ///< best cell sat on the band boundary
};

/// True when a band of half-width `band` around j = ⌊i·n/m⌋ covers every
/// cell of the m×n DP matrix — the sound exactness certificate. Column 1 is
/// worst-covered at row m (center n, need band ≥ n−1); column n at row 1
/// (center ⌊n/m⌋, need band ≥ n−⌊n/m⌋). Empty inputs are trivially covered.
bool banded_covers_all(std::size_t m, std::size_t n, std::size_t band);

/// Affine-gap banded local alignment score. `band` is the half-width in
/// database positions (must be ≥ 1); cells outside the band are treated as
/// unreachable. Direct calls belong in src/align/ only — every consumer
/// above the align layer goes through the filter pipeline (search.h) so the
/// serve cache key stays honest about what was computed.
BandedResult banded_gotoh_score(std::span<const std::uint8_t> query,
                                std::span<const std::uint8_t> db,
                                const ScoringScheme& scheme, std::size_t band);

}  // namespace swdual::align
