// Banded Smith–Waterman (heuristic accelerator).
//
// Restricts the DP to a diagonal band of half-width `band` around the line
// j = i·n/m. Exact when the optimal local alignment stays inside the band
// (the common case for homologous sequences of similar length); otherwise a
// lower bound on the true score. Cost drops from O(m·n) to O(m·band).
#pragma once

#include <cstdint>
#include <span>

#include "align/scalar.h"
#include "align/scoring.h"

namespace swdual::align {

/// Affine-gap banded local alignment score. `band` is the half-width in
/// database positions; cells outside the band are treated as unreachable.
ScoreResult banded_gotoh_score(std::span<const std::uint8_t> query,
                               std::span<const std::uint8_t> db,
                               const ScoringScheme& scheme, std::size_t band);

}  // namespace swdual::align
