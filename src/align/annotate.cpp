#include "align/annotate.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "align/alignment.h"
#include "align/locate.h"
#include "align/profile_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "seq/dbgen.h"
#include "util/error.h"

namespace swdual::align {

const char* annotate_mode_name(AnnotateMode mode) {
  switch (mode) {
    case AnnotateMode::kOff:
      return "off";
    case AnnotateMode::kStats:
      return "stats";
    case AnnotateMode::kStatsCigar:
      return "stats+cigar";
  }
  return "unknown";
}

bool parse_annotate_mode(const std::string& name, AnnotateMode& out) {
  if (name == "off") {
    out = AnnotateMode::kOff;
  } else if (name == "stats") {
    out = AnnotateMode::kStats;
  } else if (name == "stats+cigar") {
    out = AnnotateMode::kStatsCigar;
  } else {
    return false;
  }
  return true;
}

void AnnotateConfig::validate() const {
  SWDUAL_REQUIRE(evalue_cutoff > 0 && !std::isnan(evalue_cutoff),
                 "evalue cutoff must be positive (+inf disables the cutoff)");
}

void annotate_hits(
    std::vector<SearchHit>& hits, std::span<const std::uint8_t> query,
    const std::function<std::span<const std::uint8_t>(std::size_t)>& record,
    const ScoringScheme& scheme, const AnnotateConfig& config,
    const KarlinAltschulParams& params, std::uint64_t db_residues,
    obs::Tracer* tracer, obs::MetricsRegistry* metrics,
    std::size_t trace_track) {
  if (!config.enabled()) return;
  config.validate();
  if (hits.empty()) return;

  const std::size_t total = hits.size();
  {
    obs::Span span;
    if (tracer) {
      span = tracer->span("annotate_stats", "align", trace_track);
      span.arg("hits", static_cast<double>(total));
    }
    for (SearchHit& hit : hits) {
      auto annotation = std::make_shared<HitAnnotation>();
      annotation->evalue = evalue(params, hit.score, query.size(),
                                  db_residues);
      annotation->bits = bit_score(params, hit.score);
      hit.annotation = std::move(annotation);
    }
    // The cutoff drops hits AFTER ranking; e-values are monotone in score,
    // so the survivors are a prefix of the ranked list and annotated
    // results remain a prefix-filter of the unannotated ranking.
    std::erase_if(hits, [&](const SearchHit& hit) {
      return hit.annotation->evalue > config.evalue_cutoff;
    });
    span.arg("dropped", static_cast<double>(total - hits.size()));
  }
  if (metrics) {
    metrics->add("annotate_hits_total", static_cast<double>(total));
    metrics->add("annotate_cutoff_dropped",
                 static_cast<double>(total - hits.size()));
  }

  if (config.mode != AnnotateMode::kStatsCigar) return;

  obs::Span span;
  if (tracer) {
    span = tracer->span("annotate_traceback", "align", trace_track);
    span.arg("hits", static_cast<double>(hits.size()));
  }
  for (SearchHit& hit : hits) {
    const Alignment alignment =
        sw_align_affine_frugal(query, record(hit.db_index), scheme);
    // Search kernels and the traceback compute the same Gotoh recurrence;
    // a disagreement here is a kernel or traceback bug, never an input one.
    SWDUAL_CHECK(alignment.score == hit.score,
                 "traceback score disagrees with search score");
    auto annotation = std::make_shared<HitAnnotation>(*hit.annotation);
    annotation->cigar = alignment.cigar();
    annotation->query_begin = alignment.query_begin;
    annotation->query_end = alignment.query_end;
    annotation->db_begin = alignment.db_begin;
    annotation->db_end = alignment.db_end;
    hit.annotation = std::move(annotation);
  }
}

void annotate_hits(std::vector<SearchHit>& hits,
                   std::span<const std::uint8_t> query, const DbView& db,
                   const ScoringScheme& scheme, const AnnotateConfig& config,
                   const KarlinAltschulParams& params,
                   std::uint64_t db_residues, obs::Tracer* tracer,
                   obs::MetricsRegistry* metrics, std::size_t trace_track) {
  annotate_hits(
      hits, query,
      [&db](std::size_t index) {
        SWDUAL_CHECK(index < db.size(), "hit index outside the database");
        return db[index];
      },
      scheme, config, params, db_residues, tracer, metrics, trace_track);
}

std::uint64_t db_residue_count(const DbView& db) {
  std::uint64_t total = 0;
  for (const auto& record : db) total += record.size();
  return total;
}

namespace {

std::string alphabet_name(const seq::Alphabet& alphabet) {
  switch (alphabet.kind()) {
    case seq::AlphabetKind::kDna:
      return "dna";
    case seq::AlphabetKind::kRna:
      return "rna";
    case seq::AlphabetKind::kProtein:
      return "protein";
  }
  return "unknown";
}

/// Background residue frequencies for calibration: Robinson–Robinson for
/// protein (matching Alphabet::protein()'s first 20 codes), uniform over
/// the non-wildcard letters for nucleotide alphabets.
std::vector<double> background_frequencies(const seq::Alphabet& alphabet) {
  if (alphabet.kind() == seq::AlphabetKind::kProtein) {
    return seq::amino_acid_frequencies();
  }
  const std::size_t letters = alphabet.size() - 1;  // exclude the wildcard
  return std::vector<double>(letters, 1.0 / static_cast<double>(letters));
}

}  // namespace

StatsCache::StatsCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

std::shared_ptr<const KarlinAltschulParams> StatsCache::acquire(
    const ScoringScheme& scheme, const seq::Alphabet& alphabet,
    const std::string& db_id) {
  const std::string key =
      scoring_key(scheme) + '/' + alphabet_name(alphabet) + '/' + db_id;
  {
    util::MutexLock lock(mutex_);
    const auto found = index_.find(key);
    if (found != index_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, found->second);
      return found->second->second;
    }
    ++misses_;
  }

  // Calibrate outside the lock: a few hundred Gotoh alignments must not
  // serialize unrelated callers. Deterministic (fixed seed + alphabet
  // background), so a racing duplicate builds the identical value; the
  // first insert wins and everyone shares that object.
  auto params = std::make_shared<const KarlinAltschulParams>(
      calibrate_gapped_params(scheme, background_frequencies(alphabet)));

  util::MutexLock lock(mutex_);
  const auto found = index_.find(key);
  if (found != index_.end()) {
    lru_.splice(lru_.begin(), lru_, found->second);
    return found->second->second;
  }
  lru_.emplace_front(key, std::move(params));
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
  return lru_.front().second;
}

StatsCache::Stats StatsCache::stats() const {
  util::MutexLock lock(mutex_);
  return {hits_, misses_, evictions_, lru_.size(), capacity_};
}

RankedSearchResult search_database_annotated(
    std::span<const std::uint8_t> query, const DbView& db,
    const ScoringScheme& scheme, KernelKind kernel, std::size_t top_k,
    const AnnotateConfig& annotate, const KarlinAltschulParams& params,
    Backend backend) {
  RankedSearchResult out;
  out.result = search_database(query, db, scheme, kernel, backend);
  out.hits = out.result.top(top_k);
  annotate_hits(out.hits, query, db, scheme, annotate, params,
                db_residue_count(db));
  return out;
}

FilteredSearchResult search_database_filtered_annotated(
    std::span<const std::uint8_t> query, const DbView& db,
    const ScoringScheme& scheme, KernelKind kernel, std::size_t top_k,
    const FilterConfig& filter, const AnnotateConfig& annotate,
    const KarlinAltschulParams& params, Backend backend) {
  FilteredSearchResult out =
      search_database_filtered(query, db, scheme, kernel, top_k, filter,
                               backend);
  annotate_hits(out.hits, query, db, scheme, annotate, params,
                db_residue_count(db));
  return out;
}

}  // namespace swdual::align
