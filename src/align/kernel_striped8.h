// Byte-precision striped Smith–Waterman (Farrar's 8-bit tier).
//
// Sixteen query cells per vector in unsigned saturating arithmetic: the
// substitution scores carry a bias so they are non-negative, and
// saturating-at-zero subtraction implements the local alignment's
// max(…, 0) for free. Scores that reach 255 − bias are unreliable and the
// pair must be redone at 16 bits (see search.h's fallback chain) — on
// typical protein searches that is a small fraction of pairs, which is why
// STRIPED/SWIPE/CUDASW++ all run byte-precision first.
#pragma once

#include <cstdint>
#include <span>

#include "align/kernel_striped.h"
#include "align/profile.h"

namespace swdual::align {

/// Score one query (via its byte profile) against one database sequence.
/// result.overflow is set when the score ceiling was reached — the value in
/// result.score is then a lower bound only.
StripedResult striped8_score(const StripedProfileU8& profile,
                             std::span<const std::uint8_t> db,
                             const GapPenalty& gap);

/// Convenience overload building the profile internally.
StripedResult striped8_score(std::span<const std::uint8_t> query,
                             std::span<const std::uint8_t> db,
                             const ScoringScheme& scheme);

}  // namespace swdual::align
