// Runtime-dispatched SIMD backends for the alignment kernels.
//
// The kernels are templated over the vector width (simd8.h / simd16.h
// document the interface contract); this header is the runtime side: an
// enum of compiled backends, CPUID-based availability checks, a
// best-backend chooser overridable with the SWDUAL_FORCE_BACKEND
// environment variable (scalar | sse2 | avx2 | avx512), and a per-backend
// table of kernel entry points that the search drivers call through.
//
// Every backend computes bit-identical scores and identical overflow
// (8→16-bit escalation) decisions — the striped layout depends on the lane
// count, but each DP cell's value does not, and the overflow guard bands
// are functions of cell values only (DESIGN.md "SIMD backends & dispatch"
// has the full argument). Backends therefore differ *only* in speed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "align/kernel_banded.h"
#include "align/kernel_interseq.h"
#include "align/kernel_striped.h"
#include "align/kernel_striped8.h"
#include "align/profile.h"
#include "align/scoring.h"

namespace swdual::align {

/// Kernel selection for one database search. Lives here (not search.h)
/// because backend selection is kernel-aware: the best SIMD tier differs
/// per kernel (see best_backend(KernelKind)).
enum class KernelKind {
  kScalar,    ///< 32-bit Gotoh oracle (reference, no SIMD)
  kStriped,   ///< Farrar striped SIMD, 16-bit (STRIPED/SWPS3 class)
  kStriped8,  ///< Farrar striped SIMD, 8-bit tier with 16-bit/32-bit rescan
  kInterSeq,  ///< Rognes inter-sequence SIMD (SWIPE class)
};

/// Printable kernel name.
const char* kernel_name(KernelKind kind);

/// SIMD instruction-set tier used by the striped/interseq kernels.
enum class Backend {
  kAuto,    ///< resolve to best_backend() at use
  kScalar,  ///< width-generic scalar emulation (16×u8 / 8×i16 geometry)
  kSSE2,    ///< 128-bit: 16×u8 / 8×i16 lanes
  kAVX2,    ///< 256-bit: 32×u8 / 16×i16 lanes
  kAVX512,  ///< 512-bit (AVX-512BW): 64×u8 / 32×i16 lanes
};

/// Printable backend name ("auto", "scalar", "sse2", "avx2", "avx512").
const char* backend_name(Backend backend);

/// Parse a backend name (as printed by backend_name). Returns false and
/// leaves `out` untouched on unknown names.
bool parse_backend(const std::string& name, Backend& out);

/// True if this binary contains code for `backend` (compile-time property;
/// e.g. AVX2 requires the build to have compiled kernel_backend_avx2.cpp
/// with AVX2 enabled). kScalar is always compiled; kAuto is never.
bool backend_compiled(Backend backend);

/// True if `backend` is compiled in *and* the host CPU can execute it.
bool backend_available(Backend backend);

/// All available backends, narrowest first (always contains kScalar).
std::vector<Backend> available_backends();

/// The widest available backend — unless the SWDUAL_FORCE_BACKEND
/// environment variable names one, in which case that backend is returned
/// (InvalidArgument if it is unknown or unavailable on this host). The
/// SWDUAL_DISABLE_AVX512 environment variable (any non-empty value other
/// than "0") removes kAVX512 from automatic selection — deployments can opt
/// out of downclock-prone 512-bit paths fleet-wide; setting it together
/// with SWDUAL_FORCE_BACKEND=avx512 is a contradiction and throws
/// InvalidArgument. The environment is consulted on every call so tests can
/// re-point it.
Backend best_backend();

/// Kernel-aware auto selection: like best_backend(), but applies measured
/// per-kernel gates. Currently one gate exists: kStriped8 auto-selection
/// caps at kAVX2 because the byte kernel measurably regresses at 512 bits
/// on current hardware (lazy-F fixups over a too-short striped segment plus
/// 512-bit license downclocking — DESIGN.md "AVX-512 striped8 regression"
/// has the numbers). A forced backend always wins: the gate only shapes
/// *automatic* choice, never an explicit request.
Backend best_backend(KernelKind kernel);

/// kAuto → best_backend(); anything else is validated as available
/// (InvalidArgument otherwise) and returned unchanged.
Backend resolve_backend(Backend backend);

/// kAuto → best_backend(kernel); explicit backends validate as above.
Backend resolve_backend(Backend backend, KernelKind kernel);

/// Byte-kernel lane count of a resolved backend (16 / 16 / 32 / 64).
std::size_t backend_lanes8(Backend backend);

/// 16-bit-kernel lane count of a resolved backend (8 / 8 / 16 / 32).
std::size_t backend_lanes16(Backend backend);

/// Kernel entry points of one backend. Profiles passed to the striped
/// kernels must have been built with the backend's lane count.
struct KernelTable {
  StripedResult (*striped8)(const StripedProfileU8& profile,
                            std::span<const std::uint8_t> db,
                            const GapPenalty& gap);
  StripedResult (*striped)(const StripedProfile& profile,
                           std::span<const std::uint8_t> db,
                           const GapPenalty& gap);
  InterSeqResult (*interseq)(std::span<const std::uint8_t> query,
                             const SequenceViews& db,
                             const ScoringScheme& scheme);
  BandedBatchResult (*banded)(std::span<const std::uint8_t> query,
                              const SequenceViews& db,
                              const ScoringScheme& scheme, std::size_t band);
};

/// The kernel table of a *resolved*, available backend.
const KernelTable& kernel_table(Backend backend);

}  // namespace swdual::align
