#include "align/linear_space.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "align/locate.h"
#include "align/scalar.h"
#include "util/error.h"

namespace swdual::align {

namespace {

constexpr int kNegInf = std::numeric_limits<int>::min() / 4;

/// Shared state of one divide-and-conquer run: the sequences, penalties,
/// and the alignment strings being emitted in left-to-right order.
struct MMContext {
  std::span<const std::uint8_t> query;
  std::span<const std::uint8_t> db;
  const ScoreMatrix* matrix = nullptr;
  const seq::Alphabet* alphabet = nullptr;
  int g = 0;  ///< gap open (Gs)
  int h = 0;  ///< gap extend (Ge)
  std::string aligned_query;
  std::string aligned_db;

  void emit_sub(std::size_t qi, std::size_t dj) {
    aligned_query.push_back(alphabet->decode(query[qi]));
    aligned_db.push_back(alphabet->decode(db[dj]));
  }
  void emit_del(std::size_t qi) {  // query residue vs gap
    aligned_query.push_back(alphabet->decode(query[qi]));
    aligned_db.push_back('-');
  }
  void emit_ins(std::size_t dj) {  // gap vs database residue
    aligned_query.push_back('-');
    aligned_db.push_back(alphabet->decode(db[dj]));
  }
};

/// Forward score-only pass over query rows [q0, q0+rows) against database
/// columns [d0, d0+cols), with top-boundary deletion-open cost `tb`.
/// On return cc[j] / dd[j] hold the last row's CC / DD values. `reversed`
/// flips both sequences (for the bottom-half pass) without copying.
void half_pass(const MMContext& ctx, std::size_t q0, std::size_t rows,
               std::size_t d0, std::size_t cols, int tb, bool reversed,
               std::vector<int>& cc, std::vector<int>& dd) {
  const auto q_at = [&](std::size_t i) {
    return reversed ? ctx.query[q0 + rows - 1 - i] : ctx.query[q0 + i];
  };
  const auto d_at = [&](std::size_t j) {
    return reversed ? ctx.db[d0 + cols - 1 - j] : ctx.db[d0 + j];
  };
  const int g = ctx.g, h = ctx.h;

  cc.assign(cols + 1, 0);
  dd.assign(cols + 1, kNegInf);
  for (std::size_t j = 1; j <= cols; ++j) {
    cc[j] = -(g + static_cast<int>(j) * h);
  }
  for (std::size_t i = 1; i <= rows; ++i) {
    const int open = (i == 1) ? tb : g;
    const std::int8_t* scores = ctx.matrix->row(q_at(i - 1));
    int diag = cc[0];                         // CC(i-1, 0)
    cc[0] = -(tb + static_cast<int>(i) * h);  // deletion run from the top
    dd[0] = cc[0];
    int c = cc[0];       // CC(i, j-1)
    int e = kNegInf;     // insertion state E(i, j)
    for (std::size_t j = 1; j <= cols; ++j) {
      const int d = std::max(dd[j], cc[j] - open) - h;
      e = std::max(e, c - g) - h;
      const int substituted = diag + scores[d_at(j - 1)];
      const int value = std::max({substituted, d, e});
      diag = cc[j];
      cc[j] = value;
      dd[j] = d;
      c = value;
    }
  }
}

/// Recursive divide and conquer: align query rows [q0, q0+rows) to database
/// columns [d0, d0+cols), where tb / te are the deletion-open costs at the
/// top / bottom boundaries (0 when a vertical gap continues across them).
void diff(MMContext& ctx, std::size_t q0, std::size_t rows, std::size_t d0,
          std::size_t cols, int tb, int te) {
  const int g = ctx.g, h = ctx.h;

  if (rows == 0) {
    for (std::size_t j = 0; j < cols; ++j) ctx.emit_ins(d0 + j);
    return;
  }
  if (cols == 0) {
    for (std::size_t i = 0; i < rows; ++i) ctx.emit_del(q0 + i);
    return;
  }
  if (rows == 1) {
    // Direct solution: either A's single residue is deleted (the deletion
    // merges with whichever boundary is cheaper), or it is substituted
    // against some B[j] with the flanking B residues inserted.
    const int del_score = -(std::min(tb, te) + h) -
                          (cols > 0 ? g + static_cast<int>(cols) * h : 0);
    int best = del_score;
    std::ptrdiff_t best_j = -1;  // -1 = deletion option
    const std::int8_t* scores = ctx.matrix->row(ctx.query[q0]);
    for (std::size_t j = 1; j <= cols; ++j) {
      const int left =
          j > 1 ? -(g + static_cast<int>(j - 1) * h) : 0;
      const int right =
          cols - j > 0 ? -(g + static_cast<int>(cols - j) * h) : 0;
      const int value = left + scores[ctx.db[d0 + j - 1]] + right;
      if (value > best) {
        best = value;
        best_j = static_cast<std::ptrdiff_t>(j);
      }
    }
    if (best_j < 0) {
      if (tb <= te) {
        ctx.emit_del(q0);
        for (std::size_t j = 0; j < cols; ++j) ctx.emit_ins(d0 + j);
      } else {
        for (std::size_t j = 0; j < cols; ++j) ctx.emit_ins(d0 + j);
        ctx.emit_del(q0);
      }
    } else {
      const auto jm = static_cast<std::size_t>(best_j);
      for (std::size_t j = 0; j + 1 < jm; ++j) ctx.emit_ins(d0 + j);
      ctx.emit_sub(q0, d0 + jm - 1);
      for (std::size_t j = jm; j < cols; ++j) ctx.emit_ins(d0 + j);
    }
    return;
  }

  const std::size_t mid = rows / 2;
  std::size_t best_j = 0;
  bool crossing_gap = false;
  {
    std::vector<int> cc, dd, rr, ss;
    half_pass(ctx, q0, mid, d0, cols, tb, /*reversed=*/false, cc, dd);
    half_pass(ctx, q0 + mid, rows - mid, d0, cols, te, /*reversed=*/true, rr,
              ss);
    int best = kNegInf;
    for (std::size_t j = 0; j <= cols; ++j) {
      const int type1 = cc[j] + rr[cols - j];
      // A deletion spanning the boundary paid its open twice; add one back.
      const int type2 = dd[j] + ss[cols - j] + g;
      if (type1 >= best) {
        best = type1;
        best_j = j;
        crossing_gap = false;
      }
      if (type2 > best) {
        best = type2;
        best_j = j;
        crossing_gap = true;
      }
    }
  }  // scratch freed before recursing: peak memory stays Θ(cols)

  if (!crossing_gap) {
    diff(ctx, q0, mid, d0, best_j, tb, g);
    diff(ctx, q0 + mid, rows - mid, d0 + best_j, cols - best_j, g, te);
  } else {
    // Rows mid and mid+1 (1-based) are interior to one deletion run.
    diff(ctx, q0, mid - 1, d0, best_j, tb, 0);
    ctx.emit_del(q0 + mid - 1);
    ctx.emit_del(q0 + mid);
    diff(ctx, q0 + mid + 1, rows - mid - 1, d0 + best_j, cols - best_j, 0,
         te);
  }
}

/// True affine score of an emitted alignment (merged gap runs pay one open).
int score_alignment(const std::string& aq, const std::string& ad,
                    const ScoringScheme& scheme,
                    const seq::Alphabet& alphabet) {
  int score = 0;
  bool gap_q = false, gap_d = false;
  for (std::size_t c = 0; c < aq.size(); ++c) {
    if (aq[c] == '-') {
      score -= scheme.gap.extend + (gap_q ? 0 : scheme.gap.open);
      gap_q = true;
      gap_d = false;
    } else if (ad[c] == '-') {
      score -= scheme.gap.extend + (gap_d ? 0 : scheme.gap.open);
      gap_d = true;
      gap_q = false;
    } else {
      score += scheme.matrix->score(alphabet.encode(aq[c]),
                                    alphabet.encode(ad[c]));
      gap_q = gap_d = false;
    }
  }
  return score;
}

}  // namespace

Alignment nw_align_affine_linear(std::span<const std::uint8_t> query,
                                 std::span<const std::uint8_t> db,
                                 const ScoringScheme& scheme) {
  SWDUAL_REQUIRE(scheme.gap.open >= 0 && scheme.gap.extend >= 0,
                 "gap penalties are positive magnitudes");
  MMContext ctx;
  ctx.query = query;
  ctx.db = db;
  ctx.matrix = scheme.matrix;
  ctx.alphabet = &seq::Alphabet::get(scheme.matrix->alphabet());
  ctx.g = scheme.gap.open;
  ctx.h = scheme.gap.extend;
  ctx.aligned_query.reserve(query.size() + db.size());
  ctx.aligned_db.reserve(query.size() + db.size());

  diff(ctx, 0, query.size(), 0, db.size(), ctx.g, ctx.g);

  Alignment alignment;
  alignment.score =
      score_alignment(ctx.aligned_query, ctx.aligned_db, scheme,
                      *ctx.alphabet);
  alignment.aligned_query = std::move(ctx.aligned_query);
  alignment.aligned_db = std::move(ctx.aligned_db);
  alignment.query_begin = query.empty() ? 0 : 1;
  alignment.query_end = query.size();
  alignment.db_begin = db.empty() ? 0 : 1;
  alignment.db_end = db.size();
  return alignment;
}

Alignment sw_align_affine_linear(std::span<const std::uint8_t> query,
                                 std::span<const std::uint8_t> db,
                                 const ScoringScheme& scheme) {
  const LocalRegion region = locate_best_alignment(query, db, scheme);
  if (region.score == 0) return {};

  Alignment alignment = nw_align_affine_linear(
      query.subspan(region.query_begin - 1,
                    region.query_end - region.query_begin + 1),
      db.subspan(region.db_begin - 1, region.db_end - region.db_begin + 1),
      scheme);
  SWDUAL_CHECK(alignment.score == region.score,
               "linear-space region alignment lost the optimal score");
  alignment.query_begin += region.query_begin - 1;
  alignment.query_end += region.query_begin - 1;
  alignment.db_begin += region.db_begin - 1;
  alignment.db_end += region.db_begin - 1;
  return alignment;
}

}  // namespace swdual::align
