#include "align/statistics.h"

#include <cmath>

#include "align/scalar.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/stats.h"

namespace swdual::align {

namespace {

/// Σ p_a p_b e^{λ s(a,b)} over the scored residue pairs.
double restriction_sum(const ScoreMatrix& matrix,
                       const std::vector<double>& freqs, double lambda) {
  double total = 0.0;
  for (std::size_t a = 0; a < freqs.size(); ++a) {
    if (freqs[a] == 0) continue;  // 0 · e^{λs} is NaN once e^{λs} overflows
    for (std::size_t b = 0; b < freqs.size(); ++b) {
      if (freqs[b] == 0) continue;
      total += freqs[a] * freqs[b] *
               std::exp(lambda * matrix.score(static_cast<std::uint8_t>(a),
                                              static_cast<std::uint8_t>(b)));
    }
  }
  return total;
}

constexpr double kEulerGamma = 0.57721566490153286;

}  // namespace

double solve_ungapped_lambda(const ScoreMatrix& matrix,
                             const std::vector<double>& freqs) {
  SWDUAL_REQUIRE(!freqs.empty() && freqs.size() <= matrix.size(),
                 "frequency vector does not fit the matrix");
  // Both moments are taken over the frequency SUPPORT: a positive score
  // reachable only through zero-frequency residues cannot occur in random
  // sequences, so counting it would pass the regime check and then leave
  // the restriction sum stuck below 1 forever.
  double expected = 0.0;
  int max_score = 0;
  for (std::size_t a = 0; a < freqs.size(); ++a) {
    if (freqs[a] == 0) continue;
    for (std::size_t b = 0; b < freqs.size(); ++b) {
      if (freqs[b] == 0) continue;
      const int s = matrix.score(static_cast<std::uint8_t>(a),
                                 static_cast<std::uint8_t>(b));
      expected += freqs[a] * freqs[b] * s;
      max_score = std::max(max_score, s);
    }
  }
  SWDUAL_REQUIRE(expected < 0,
                 "expected residue-pair score must be negative");
  SWDUAL_REQUIRE(max_score > 0,
                 "matrix must have a positive score on the frequency "
                 "support (positive scores on zero-frequency residues "
                 "cannot occur)");

  // f(λ) = Σ p_a p_b e^{λ s} − 1: f(0) = 0, f'(0) = E[s] < 0, f(λ) → ∞.
  // The positive root is unique; bracket it then bisect.
  double hi = 0.5;
  while (restriction_sum(matrix, freqs, hi) < 1.0) {
    hi *= 2.0;
    // Always-on: a matrix whose positive scores all sit on zero-frequency
    // residues never crosses 1, and the doubling would spin to inf.
    SWDUAL_REQUIRE(hi < 1e4,
                   "failed to bracket lambda: restriction sum never reaches 1 "
                   "(positive scores may lie on zero-frequency residues)");
  }
  double lo = 0.0;
  for (int iter = 0; iter < 200 && (hi - lo) > 1e-12; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (restriction_sum(matrix, freqs, mid) < 1.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

KarlinAltschulParams calibrate_gapped_params(const ScoringScheme& scheme,
                                             const std::vector<double>& freqs,
                                             std::size_t ref_m,
                                             std::size_t ref_n,
                                             std::size_t samples,
                                             std::uint64_t seed) {
  SWDUAL_REQUIRE(samples >= 10, "need at least 10 calibration samples");
  SWDUAL_REQUIRE(ref_m > 0 && ref_n > 0, "reference sizes must be positive");

  // Cumulative sampler over the provided background. Zero-frequency entries
  // are excluded from the cdf outright: keeping them would duplicate the
  // previous cumulative value, and rng.uniform() == 0.0 (or u landing exactly
  // on such a duplicate) would make lower_bound select a residue that cannot
  // occur. `support` maps each cdf slot back to its original residue code.
  std::vector<double> cdf;
  std::vector<std::uint8_t> support;
  double total = 0.0;
  for (std::size_t code = 0; code < freqs.size(); ++code) {
    SWDUAL_REQUIRE(freqs[code] >= 0 && std::isfinite(freqs[code]),
                   "frequencies must be finite and non-negative");
    if (freqs[code] == 0) continue;
    total += freqs[code];
    cdf.push_back(total);
    support.push_back(static_cast<std::uint8_t>(code));
  }
  SWDUAL_REQUIRE(total > 0, "frequencies must not all be zero");
  for (double& c : cdf) c /= total;

  Rng rng(seed);
  const auto sample_seq = [&](std::size_t len) {
    std::vector<std::uint8_t> out(len);
    for (auto& code : out) {
      const double u = rng.uniform();
      const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
      code = support[static_cast<std::size_t>(
          std::min<std::ptrdiff_t>(it - cdf.begin(),
                                   static_cast<std::ptrdiff_t>(cdf.size()) - 1))];
    }
    return out;
  };

  RunningStats scores;
  for (std::size_t i = 0; i < samples; ++i) {
    const auto a = sample_seq(ref_m);
    const auto b = sample_seq(ref_n);
    scores.add(gotoh_score(a, b, scheme).score);
  }

  // Method of moments for a Gumbel(μ, 1/λ):
  //   stddev = π / (λ √6),  mean = μ + γ/λ,  μ = ln(K·m·n)/λ.
  KarlinAltschulParams params;
  SWDUAL_CHECK(scores.stddev() > 0, "degenerate calibration distribution");
  params.lambda = kPi / (scores.stddev() * std::sqrt(6.0));
  const double mu = scores.mean() - kEulerGamma / params.lambda;
  params.k = std::exp(params.lambda * mu) /
             (static_cast<double>(ref_m) * static_cast<double>(ref_n));
  return params;
}

double evalue(const KarlinAltschulParams& params, int score, std::uint64_t m,
              std::uint64_t n) {
  SWDUAL_REQUIRE(params.lambda > 0 && params.k > 0 &&
                     std::isfinite(params.lambda) && std::isfinite(params.k),
                 "statistics parameters not calibrated");
  SWDUAL_REQUIRE(m > 0 && n > 0, "search-space sizes must be positive");
  return params.k * static_cast<double>(m) * static_cast<double>(n) *
         std::exp(-params.lambda * score);
}

double pvalue(const KarlinAltschulParams& params, int score, std::uint64_t m,
              std::uint64_t n) {
  return -std::expm1(-evalue(params, score, m, n));
}

double bit_score(const KarlinAltschulParams& params, int score) {
  SWDUAL_REQUIRE(params.lambda > 0 && params.k > 0 &&
                     std::isfinite(params.lambda) && std::isfinite(params.k),
                 "statistics parameters not calibrated");
  return (params.lambda * score - std::log(params.k)) / std::log(2.0);
}

}  // namespace swdual::align
