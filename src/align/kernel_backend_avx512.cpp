// AVX-512BW backend: the width-generic kernels instantiated on the 512-bit
// vector types (64×u8 / 32×i16 lanes).
//
// This translation unit — and only this one — is compiled with
// -mavx512f -mavx512bw (see src/align/CMakeLists.txt), so the
// instantiations below may use AVX-512 instructions freely; nothing here
// runs unless the runtime dispatcher has confirmed the CPU supports
// AVX-512BW (align/backend.cpp). If the compiler cannot target AVX-512BW
// the provider degrades to nullptr and the backend is reported as not
// compiled.
#include "align/kernel_dispatch.h"
#include "align/simd_avx512.h"

#if defined(SWDUAL_SIMD_AVX512)

#include "align/kernel_banded_impl.h"
#include "align/kernel_interseq_impl.h"
#include "align/kernel_striped8_impl.h"
#include "align/kernel_striped_impl.h"

namespace swdual::align::detail {

namespace {

const KernelTable kTable = {
    &striped8_score_impl<V8x64>,
    &striped_score_impl<V16x32>,
    &interseq_scores_impl<V16x32>,
    &banded_screen_impl<V8x64, V16x32>,
};

}  // namespace

const KernelTable* avx512_kernel_table() { return &kTable; }

}  // namespace swdual::align::detail

#else

namespace swdual::align::detail {

const KernelTable* avx512_kernel_table() { return nullptr; }

}  // namespace swdual::align::detail

#endif
