// Query profiles: matrix rows re-indexed by query position.
//
// A query profile replaces the per-cell matrix lookup S(q[i], d[j]) with
// profile[d[j]][i] — one table indexed by the database residue, laid out so
// kernels stream it sequentially. Both SIMD kernels build on this, as do
// SWIPE, STRIPED and CUDASW++ (the paper's §II-C "techniques being used to
// optimize each comparison").
//
// The striped profiles are *lane-width parameterized*: the striped layout
// depends on the SIMD backend's lane count (16/32/64 byte lanes, 8/16/32
// 16-bit lanes), so each profile records the lane count it was built for
// and the kernels require it to match their vector width. The final scores
// are layout-independent — see DESIGN.md "SIMD backends & dispatch".
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "align/scoring.h"
#include "align/simd16.h"
#include "align/simd8.h"
#include "util/aligned.h"

namespace swdual::align {

/// Sequential query profile: row(code)[i] == matrix.score(q[i], code).
class QueryProfile {
 public:
  QueryProfile(std::span<const std::uint8_t> query, const ScoreMatrix& matrix);

  std::size_t query_length() const { return length_; }
  std::size_t alphabet_size() const { return alphabet_size_; }

  /// Scores of every query position against database residue `code`.
  const std::int16_t* row(std::uint8_t code) const {
    return data_.data() + static_cast<std::size_t>(code) * length_;
  }

 private:
  std::size_t length_;
  std::size_t alphabet_size_;
  std::vector<std::int16_t> data_;
};

/// Farrar striped profile: the query is split into `lanes` segments of
/// `segment_length()` positions; vector s holds query positions
/// { s, s+segLen, ..., s+(lanes-1)·segLen }. Padding positions (>= |q|)
/// score 0 against everything, which provably cannot raise the maximum.
class StripedProfile {
 public:
  StripedProfile(std::span<const std::uint8_t> query, const ScoreMatrix& matrix,
                 std::size_t lanes = kLanes16);

  std::size_t query_length() const { return length_; }
  std::size_t segment_length() const { return segment_length_; }
  std::size_t alphabet_size() const { return alphabet_size_; }
  /// SIMD lane count this profile's striping was built for.
  std::size_t lanes() const { return lanes_; }
  /// Largest substitution score of the source matrix; the kernel's overflow
  /// guard band (see kernel_striped_impl.h) is derived from it.
  std::int8_t max_score() const { return max_score_; }

  /// Striped rows for database residue `code`:
  /// row(code)[s * lanes() + lane] == score of query position
  /// lane*segLen + s (or 0 if that position is padding).
  const std::int16_t* row(std::uint8_t code) const {
    return data_.data() +
           static_cast<std::size_t>(code) * segment_length_ * lanes_;
  }

 private:
  std::size_t length_;
  std::size_t segment_length_;
  std::size_t alphabet_size_;
  std::size_t lanes_;
  std::int8_t max_score_ = 0;
  /// 64-byte aligned: every striped row starts lane-width aligned.
  AlignedVector<std::int16_t> data_;
};

/// Byte-precision striped profile: scores stored *biased* (score − min_score
/// of the matrix) so every entry is unsigned; `lanes` query segments.
/// Padding positions store exactly `bias` (true score 0), which cannot raise
/// the maximum. Used by the 8-bit kernel tier (see kernel_striped8.h).
class StripedProfileU8 {
 public:
  StripedProfileU8(std::span<const std::uint8_t> query,
                   const ScoreMatrix& matrix, std::size_t lanes = kLanes8);

  std::size_t query_length() const { return length_; }
  std::size_t segment_length() const { return segment_length_; }
  /// SIMD lane count this profile's striping was built for.
  std::size_t lanes() const { return lanes_; }
  /// The bias added to every stored score (= −min matrix score, ≥ 0).
  std::uint8_t bias() const { return bias_; }
  /// Largest substitution score of the source matrix (overflow guard band).
  std::int8_t max_score() const { return max_score_; }

  /// row(code)[s * lanes() + lane] == biased score of query position
  /// lane*segLen + s against database residue `code`.
  const std::uint8_t* row(std::uint8_t code) const {
    return data_.data() +
           static_cast<std::size_t>(code) * segment_length_ * lanes_;
  }

 private:
  std::size_t length_;
  std::size_t segment_length_;
  std::size_t lanes_;
  std::uint8_t bias_;
  std::int8_t max_score_ = 0;
  /// 64-byte aligned: every striped row starts lane-width aligned.
  AlignedVector<std::uint8_t> data_;
};

}  // namespace swdual::align
