#include "align/sharded_search.h"

#include <algorithm>
#include <exception>
#include <future>
#include <numeric>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "seq/swdb.h"
#include "util/error.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace swdual::align {

double ShardPlan::imbalance() const {
  if (shards.empty()) return 0.0;
  std::uint64_t max_load = 0;
  std::uint64_t sum = 0;
  for (const Shard& shard : shards) {
    max_load = std::max(max_load, shard.residues);
    sum += shard.residues;
  }
  if (sum == 0) return 0.0;
  const double mean =
      static_cast<double>(sum) / static_cast<double>(shards.size());
  return static_cast<double>(max_load) / mean - 1.0;
}

ShardPlan plan_shards(std::span<const std::uint32_t> lengths,
                      std::size_t num_shards) {
  ShardPlan plan;
  const std::size_t n = lengths.size();
  if (n == 0) return plan;
  num_shards = std::clamp<std::size_t>(num_shards, 1, n);
  plan.shards.resize(num_shards);

  // Longest-first visit order (ties by record id — the same tie-break the
  // SWDB lane-batch index uses, so shard record lists line up with the
  // inter-sequence kernel's preferred batching).
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&lengths](std::uint32_t a, std::uint32_t b) {
                     return lengths[a] > lengths[b];
                   });

  for (const std::uint32_t id : order) {
    // Lightest shard so far, ties to the lowest index: deterministic LPT.
    std::size_t best = 0;
    for (std::size_t s = 1; s < num_shards; ++s) {
      if (plan.shards[s].residues < plan.shards[best].residues) best = s;
    }
    const std::uint64_t cost = std::max<std::uint64_t>(lengths[id], 1);
    plan.shards[best].records.push_back(id);
    plan.shards[best].residues += cost;
    plan.total_residues += cost;
  }
  // Record lists in ascending database order: a shard's local record order
  // then agrees with global order, so per-shard top-k heaps break score
  // ties exactly the way the unsharded search does (smallest database index
  // wins) — the invariant the scatter-gather merge depends on.
  for (ShardPlan::Shard& shard : plan.shards) {
    std::sort(shard.records.begin(), shard.records.end());
  }
  return plan;
}

ShardPlan plan_shards(const DbView& db, std::size_t num_shards) {
  std::vector<std::uint32_t> lengths;
  lengths.reserve(db.size());
  for (const auto& record : db) {
    lengths.push_back(static_cast<std::uint32_t>(record.size()));
  }
  return plan_shards(lengths, num_shards);
}

struct ShardedSearchEngine::ShardState {
  DbView view;  ///< shard records, longest-first (spans into shared storage)
  std::unique_ptr<ParallelSearchEngine> engine;
  std::unique_ptr<ProfileCache> profiles;
};

ShardedSearchEngine::ShardedSearchEngine(const DbView& db,
                                         const ShardedSearchOptions& options)
    : options_(options) {
  plan_ = plan_shards(db, options_.num_shards);
  init(db, {});
}

ShardedSearchEngine::ShardedSearchEngine(
    std::shared_ptr<const seq::MappedSwdb> db,
    const ShardedSearchOptions& options)
    : options_(options), mapped_(std::move(db)) {
  SWDUAL_REQUIRE(mapped_ != nullptr, "mapped database must not be null");
  plan_ = plan_shards(mapped_->lengths(), options_.num_shards);
  init(mapped_->residue_views(), mapped_->lengths());
}

ShardedSearchEngine::~ShardedSearchEngine() = default;

void ShardedSearchEngine::init(const DbView& db,
                               std::span<const std::uint32_t> lengths) {
  (void)lengths;
  db_records_ = db.size();
  global_view_ = db;  // span copies; the filtered gather rescans through it
  db_residues_ = db_residue_count(global_view_);
  shards_.reserve(plan_.shards.size());
  for (const ShardPlan::Shard& shard_plan : plan_.shards) {
    auto state = std::make_unique<ShardState>();
    state->view.reserve(shard_plan.records.size());
    for (const std::uint32_t id : shard_plan.records) {
      state->view.push_back(db[id]);
    }
    ParallelSearchOptions engine_options;
    engine_options.threads = std::max<std::size_t>(1, options_.threads_per_shard);
    // The shard view is in ascending database order (the merge-discipline
    // invariant); the engine re-sorts longest-first internally for the
    // inter-sequence lane batches and inverse-permutes results back.
    engine_options.sort_by_length = true;
    engine_options.tracer = options_.tracer;
    engine_options.metrics = options_.metrics;
    engine_options.trace_track = options_.trace_track;
    state->engine =
        std::make_unique<ParallelSearchEngine>(state->view, engine_options);
    state->profiles =
        std::make_unique<ProfileCache>(options_.profile_cache_capacity);
    shards_.push_back(std::move(state));
  }
  if (options_.parallel_scatter && shards_.size() > 1) {
    scatter_pool_ = std::make_unique<ThreadPool>(shards_.size());
  }
}

std::vector<RankedSearchResult> ShardedSearchEngine::scan_shard_serial(
    const ShardState& shard, std::span<const SearchProfiles* const> profiles,
    std::size_t k) const {
  std::vector<RankedSearchResult> results(profiles.size());
  for (std::size_t q = 0; q < profiles.size(); ++q) {
    RankedSearchResult& ranked = results[q];
    ranked.result = search_range(*profiles[q], shard.view, 0, shard.view.size());
    for (std::size_t i = 0; i < shard.view.size(); ++i) {
      push_top_hit(ranked.hits, {i, ranked.result.scores[i]}, k);
    }
    finish_top_hits(ranked.hits);
  }
  return results;
}

ShardedSearchEngine::ShardOutcome ShardedSearchEngine::scan_shard(
    std::size_t shard_index,
    std::span<const std::span<const std::uint8_t>> queries,
    const ScoringScheme& scheme, KernelKind kernel, Backend backend,
    std::size_t k) const {
  const ShardState& shard = *shards_[shard_index];
  ShardOutcome outcome;

  // Build (or fetch) the K profile sets once for the whole group pass, from
  // this shard's private cache — the "build K profiles once, scan the chunk
  // once per query" half of the multi-query amortization.
  std::vector<std::shared_ptr<const CachedProfiles>> cached;
  std::vector<const SearchProfiles*> profiles;
  cached.reserve(queries.size());
  profiles.reserve(queries.size());
  for (const auto& query : queries) {
    cached.push_back(shard.profiles->acquire(query, scheme, kernel, backend));
    profiles.push_back(&cached.back()->profiles());
  }

  for (std::size_t attempt = 0; attempt <= options_.max_shard_retries;
       ++attempt) {
    ++outcome.attempts;
    obs::Span span;
    if (options_.tracer) {
      span = options_.tracer->span("shard_scan", "shard",
                                   options_.trace_track);
      span.arg("shard", static_cast<double>(shard_index));
      span.arg("attempt", static_cast<double>(attempt));
      span.arg("records", static_cast<double>(shard.view.size()));
      span.arg("queries", static_cast<double>(queries.size()));
    }
    WallTimer timer;
    try {
      if (options_.before_shard) options_.before_shard(shard_index, attempt);
      outcome.per_query =
          attempt == 0
              ? shard.engine->search_ranked_many(profiles, k)
              : scan_shard_serial(shard, profiles, k);  // recovery path
      outcome.ok = true;
    } catch (const std::exception& error) {
      outcome.reason = error.what();
    } catch (...) {
      outcome.reason = "unknown shard failure";
    }
    if (options_.metrics) {
      if (outcome.ok) {
        options_.metrics->add("serve_shard_scans");
        options_.metrics->observe("serve_shard_scan_seconds",
                                  timer.seconds());
      } else if (attempt < options_.max_shard_retries) {
        options_.metrics->add("serve_shard_retries");
      } else {
        options_.metrics->add("serve_shard_failures");
      }
    }
    {
      util::MutexLock lock(stats_mutex_);
      if (outcome.ok) {
        ++stats_.scans;
      } else if (attempt < options_.max_shard_retries) {
        ++stats_.retries;
      } else {
        ++stats_.failures;
      }
    }
    if (outcome.ok) break;
  }

  if (outcome.ok) {
    // Gather discipline: shard-local hit indices become global database
    // indices through the plan's record list (the inverse permutation), so
    // the cross-shard merge ranks exactly the same candidates the unsharded
    // search ranks.
    const std::vector<std::uint32_t>& records =
        plan_.shards[shard_index].records;
    for (RankedSearchResult& ranked : outcome.per_query) {
      for (SearchHit& hit : ranked.hits) {
        hit.db_index = records[hit.db_index];
      }
    }
  }
  return outcome;
}

std::vector<ShardedSearchResult> ShardedSearchEngine::search_many(
    std::span<const std::span<const std::uint8_t>> queries,
    const ScoringScheme& scheme, KernelKind kernel, std::size_t k,
    Backend backend) const {
  std::vector<ShardedSearchResult> results(queries.size());
  if (queries.empty()) return results;
  for (const auto& query : queries) {
    SWDUAL_REQUIRE(!query.empty(), "cannot search with an empty query");
  }
  // Resolve once so every shard stripes its profiles for the same backend
  // (and their caches share entries across group passes).
  const Backend resolved = resolve_backend(backend, kernel);

  {
    util::MutexLock lock(stats_mutex_);
    ++stats_.group_passes;
  }
  if (options_.metrics) {
    options_.metrics->add("serve_shard_group_passes");
    options_.metrics->observe("serve_shard_group_queries",
                              static_cast<double>(queries.size()));
  }

  // Scatter.
  std::vector<ShardOutcome> outcomes(shards_.size());
  if (scatter_pool_) {
    std::vector<std::future<ShardOutcome>> futures;
    futures.reserve(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      futures.push_back(scatter_pool_->submit([this, s, queries, &scheme,
                                               kernel, resolved, k] {
        return scan_shard(s, queries, scheme, kernel, resolved, k);
      }));
    }
    for (std::size_t s = 0; s < futures.size(); ++s) {
      outcomes[s] = futures[s].get();
    }
  } else {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      outcomes[s] = scan_shard(s, queries, scheme, kernel, resolved, k);
    }
  }

  // Gather: scatter shard-local scores back to database order and merge the
  // per-shard top-k heaps (already on global indices) in shard order; ties
  // resolve by global index, so the ranking matches the unsharded search.
  for (std::size_t q = 0; q < queries.size(); ++q) {
    ShardedSearchResult& result = results[q];
    result.ranked.result.scores.assign(db_records_, 0);
  }
  for (std::size_t s = 0; s < outcomes.size(); ++s) {
    const ShardOutcome& outcome = outcomes[s];
    if (!outcome.ok) {
      for (ShardedSearchResult& result : results) {
        result.complete = false;
        result.failures.push_back({s, outcome.attempts, outcome.reason});
      }
      continue;
    }
    const std::vector<std::uint32_t>& records = plan_.shards[s].records;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      ShardedSearchResult& result = results[q];
      const RankedSearchResult& shard_ranked = outcome.per_query[q];
      for (std::size_t i = 0; i < records.size(); ++i) {
        result.ranked.result.scores[records[i]] =
            shard_ranked.result.scores[i];
      }
      result.ranked.result.cells += shard_ranked.result.cells;
      result.ranked.result.overflow_rescans +=
          shard_ranked.result.overflow_rescans;
      for (const SearchHit& hit : shard_ranked.hits) {
        push_top_hit(result.ranked.hits, hit, k);
      }
    }
  }
  for (ShardedSearchResult& result : results) {
    finish_top_hits(result.ranked.hits);
  }
  return results;
}

ShardedSearchEngine::ShardScreenOutcome ShardedSearchEngine::screen_shard(
    std::size_t shard_index,
    std::span<const std::span<const std::uint8_t>> queries,
    const ScoringScheme& scheme, KernelKind kernel, Backend backend,
    std::size_t band) const {
  const ShardState& shard = *shards_[shard_index];
  ShardScreenOutcome outcome;

  std::vector<std::shared_ptr<const CachedProfiles>> cached;
  std::vector<const SearchProfiles*> profiles;
  cached.reserve(queries.size());
  profiles.reserve(queries.size());
  for (const auto& query : queries) {
    cached.push_back(shard.profiles->acquire(query, scheme, kernel, backend));
    profiles.push_back(&cached.back()->profiles());
  }

  const auto serial_screen = [&] {
    // Recovery path: direct screen over the shard view on this thread,
    // independent of the shard's engine/pool. Same results by construction.
    std::vector<ScreenResult> screens(profiles.size());
    for (std::size_t q = 0; q < profiles.size(); ++q) {
      screens[q] =
          screen_range(*profiles[q], shard.view, 0, shard.view.size(), band);
    }
    return screens;
  };

  for (std::size_t attempt = 0; attempt <= options_.max_shard_retries;
       ++attempt) {
    ++outcome.attempts;
    obs::Span span;
    if (options_.tracer) {
      span = options_.tracer->span("shard_scan", "shard",
                                   options_.trace_track);
      span.arg("shard", static_cast<double>(shard_index));
      span.arg("attempt", static_cast<double>(attempt));
      span.arg("records", static_cast<double>(shard.view.size()));
      span.arg("queries", static_cast<double>(queries.size()));
      span.arg("screen", 1.0);
    }
    WallTimer timer;
    try {
      if (options_.before_shard) options_.before_shard(shard_index, attempt);
      outcome.per_query = attempt == 0
                              ? shard.engine->screen_many(profiles, band)
                              : serial_screen();
      outcome.ok = true;
    } catch (const std::exception& error) {
      outcome.reason = error.what();
    } catch (...) {
      outcome.reason = "unknown shard failure";
    }
    if (options_.metrics) {
      if (outcome.ok) {
        options_.metrics->add("serve_shard_scans");
        options_.metrics->observe("serve_shard_scan_seconds",
                                  timer.seconds());
      } else if (attempt < options_.max_shard_retries) {
        options_.metrics->add("serve_shard_retries");
      } else {
        options_.metrics->add("serve_shard_failures");
      }
    }
    {
      util::MutexLock lock(stats_mutex_);
      if (outcome.ok) {
        ++stats_.scans;
      } else if (attempt < options_.max_shard_retries) {
        ++stats_.retries;
      } else {
        ++stats_.failures;
      }
    }
    if (outcome.ok) break;
  }
  return outcome;
}

std::vector<ShardedSearchResult> ShardedSearchEngine::search_many_filtered(
    std::span<const std::span<const std::uint8_t>> queries,
    const ScoringScheme& scheme, KernelKind kernel, std::size_t k,
    const FilterConfig& config, Backend backend) const {
  config.validate();
  if (!config.enabled()) {
    return search_many(queries, scheme, kernel, k, backend);
  }
  std::vector<ShardedSearchResult> results(queries.size());
  if (queries.empty()) return results;
  for (const auto& query : queries) {
    SWDUAL_REQUIRE(!query.empty(), "cannot search with an empty query");
  }
  const Backend resolved = resolve_backend(backend, kernel);

  {
    util::MutexLock lock(stats_mutex_);
    ++stats_.group_passes;
  }
  if (options_.metrics) {
    options_.metrics->add("serve_shard_group_passes");
    options_.metrics->observe("serve_shard_group_queries",
                              static_cast<double>(queries.size()));
  }

  // Scatter the stage-1 screens.
  std::vector<ShardScreenOutcome> outcomes(shards_.size());
  if (scatter_pool_) {
    std::vector<std::future<ShardScreenOutcome>> futures;
    futures.reserve(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      futures.push_back(scatter_pool_->submit([this, s, queries, &scheme,
                                               kernel, resolved, &config] {
        return screen_shard(s, queries, scheme, kernel, resolved,
                            config.band);
      }));
    }
    for (std::size_t s = 0; s < futures.size(); ++s) {
      outcomes[s] = futures[s].get();
    }
  } else {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      outcomes[s] =
          screen_shard(s, queries, scheme, kernel, resolved, config.band);
    }
  }

  // Gather the screens to database order. Records of failed shards keep
  // score 0 with the exact certificate set, so they are never rescanned and
  // stay out of the top-k — the same partial-result semantics as
  // search_many.
  std::vector<ScreenResult> screens(queries.size());
  for (ScreenResult& screen : screens) {
    screen.scores.assign(db_records_, 0);
    screen.exact.assign(db_records_, 1);
    screen.edge_hit.assign(db_records_, 0);
  }
  std::vector<std::uint8_t> scanned;  // built only when a shard failed
  for (std::size_t s = 0; s < outcomes.size(); ++s) {
    const ShardScreenOutcome& outcome = outcomes[s];
    if (!outcome.ok) {
      for (ShardedSearchResult& result : results) {
        result.complete = false;
        result.failures.push_back({s, outcome.attempts, outcome.reason});
      }
      if (scanned.empty()) scanned.assign(db_records_, 1);
      for (const std::uint32_t id : plan_.shards[s].records) {
        scanned[id] = 0;
      }
      continue;
    }
    const std::vector<std::uint32_t>& records = plan_.shards[s].records;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      ScreenResult& screen = screens[q];
      const ScreenResult& shard_screen = outcome.per_query[q];
      for (std::size_t i = 0; i < records.size(); ++i) {
        screen.scores[records[i]] = shard_screen.scores[i];
        screen.exact[records[i]] = shard_screen.exact[i];
        screen.edge_hit[records[i]] = shard_screen.edge_hit[i];
      }
      screen.cells += shard_screen.cells;
    }
  }

  // Global candidate selection + exact rescan on the gather thread: the
  // candidate set is a pure function of the merged screens, so results are
  // identical for every shard topology.
  for (std::size_t q = 0; q < queries.size(); ++q) {
    ShardedSearchResult& result = results[q];
    ScreenResult& screen = screens[q];
    result.filtered = true;
    std::vector<std::uint32_t> candidates =
        filter_select_candidates(screen, k, config, &result.filter);
    if (!scanned.empty()) {
      // Partial results: records of failed shards were never screened and
      // must not surface as zero-score hits (search_many's semantics).
      result.filter.candidates -= static_cast<std::uint64_t>(std::erase_if(
          candidates, [&scanned](std::uint32_t c) { return !scanned[c]; }));
    }

    std::vector<std::uint32_t> rescan_index;
    for (const std::uint32_t c : candidates) {
      if (!screen.exact[c]) rescan_index.push_back(c);
    }
    std::stable_sort(rescan_index.begin(), rescan_index.end(),
                     [this](std::uint32_t a, std::uint32_t b) {
                       return global_view_[a].size() > global_view_[b].size();
                     });
    DbView rescan;
    rescan.reserve(rescan_index.size());
    for (const std::uint32_t c : rescan_index) {
      rescan.push_back(global_view_[c]);
    }

    obs::Span span;
    if (options_.tracer) {
      span = options_.tracer->span("filter_rescore", "shard",
                                   options_.trace_track);
      span.arg("query", static_cast<double>(q));
      span.arg("candidates", static_cast<double>(candidates.size()));
      span.arg("rescans", static_cast<double>(rescan.size()));
    }
    const SearchProfiles profiles(queries[q], scheme, kernel, resolved);
    const SearchResult rescored =
        search_range(profiles, rescan, 0, rescan.size());

    result.ranked.result.scores = std::move(screen.scores);
    result.ranked.result.cells = screen.cells + rescored.cells;
    result.ranked.result.overflow_rescans = rescored.overflow_rescans;
    for (std::size_t i = 0; i < rescan_index.size(); ++i) {
      result.ranked.result.scores[rescan_index[i]] = rescored.scores[i];
    }
    result.filter.rescans += rescan_index.size();

    for (const std::uint32_t c : candidates) {
      push_top_hit(result.ranked.hits, {c, result.ranked.result.scores[c]},
                   k);
    }
    finish_top_hits(result.ranked.hits);
    if (options_.metrics) {
      options_.metrics->add("filter_candidates",
                            static_cast<double>(result.filter.candidates));
      options_.metrics->add("filter_rescans",
                            static_cast<double>(result.filter.rescans));
      options_.metrics->add("filter_band_uncertain",
                            static_cast<double>(result.filter.band_uncertain));
    }
  }
  return results;
}

std::vector<ShardedSearchResult> ShardedSearchEngine::search_many_filtered(
    std::span<const std::span<const std::uint8_t>> queries,
    const ScoringScheme& scheme, KernelKind kernel, std::size_t k,
    const FilterConfig& config, const AnnotateConfig& annotate,
    const KarlinAltschulParams& params, Backend backend) const {
  std::vector<ShardedSearchResult> results =
      search_many_filtered(queries, scheme, kernel, k, config, backend);
  if (!annotate.enabled()) return results;
  // Post-gather only: every query's hits are already the merged GLOBAL
  // top-k, so annotating here (against the database-order view with the
  // true residue total) is independent of the shard topology.
  for (std::size_t q = 0; q < results.size(); ++q) {
    annotate_hits(results[q].ranked.hits, queries[q], global_view_, scheme,
                  annotate, params, db_residues_, options_.tracer,
                  options_.metrics, options_.trace_track);
  }
  return results;
}

ShardedSearchResult ShardedSearchEngine::search_ranked(
    std::span<const std::uint8_t> query, const ScoringScheme& scheme,
    KernelKind kernel, std::size_t k, Backend backend) const {
  const std::span<const std::uint8_t> queries[] = {query};
  return std::move(search_many(queries, scheme, kernel, k, backend).front());
}

ShardedSearchEngine::Stats ShardedSearchEngine::stats() const {
  util::MutexLock lock(stats_mutex_);
  return stats_;
}

}  // namespace swdual::align
