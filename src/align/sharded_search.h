// Sharded scatter-gather database search: the serve-layer scale-out engine.
//
// One monolithic database search caps out at one machine's worth of
// threads. This engine splits the database into N residue-balanced shards —
// zero-copy views into one shared buffer or mmap-backed SWDB, never copies —
// and runs an independent ParallelSearchEngine (with its own ProfileCache,
// simulating one worker node each) per shard. A search scatters over the
// shards, each shard scan keeps a local top-k heap, and the gather step
// merges the per-shard heaps with the same inverse-permutation discipline
// the chunked engine uses, so results are bit-identical to the unsharded
// search for every kernel, backend, thread count, and shard count.
//
// Multi-query groups: search_many() takes K concurrent queries and shares
// ONE pass over every shard chunk between them (profiles built once per
// shard via its cache, the chunk scanned once per query while hot), the way
// SWAPHI amortizes one database partition pass across concurrent queries.
//
// Failure semantics: an optional before_shard hook (mirroring the serve
// layer's before_batch) is invoked ahead of every shard-scan attempt; a
// throwing attempt is retried up to max_shard_retries times on the recovery
// path — a direct serial scan on the gather thread, independent of the
// shard's own engine/pool — and a shard that exhausts its budget is
// reported in ShardedSearchResult::failures with a reason while the
// remaining shards' results are still returned (partial results, scores of
// unscanned records read 0 and never enter the merged top-k).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "align/parallel_search.h"
#include "align/profile_cache.h"
#include "align/search.h"
#include "util/mutex.h"

namespace swdual::obs {
class MetricsRegistry;
class Tracer;
}  // namespace swdual::obs

namespace swdual::seq {
class MappedSwdb;
}  // namespace swdual::seq

namespace swdual::align {

/// Residue-balanced shard assignment: which database records each shard
/// scans. Assignment is greedy longest-processing-time (records visited
/// longest-first, each placed on the currently lightest shard, ties to the
/// lowest shard index); each shard's record list is then stored in
/// ascending database order so shard-local rank ties resolve exactly like
/// global ones (the per-shard engine re-sorts longest-first internally for
/// the inter-sequence kernel and inverse-permutes back). Deterministic for
/// a given (lengths, shard count).
struct ShardPlan {
  struct Shard {
    std::vector<std::uint32_t> records;  ///< db indices, ascending
    std::uint64_t residues = 0;          ///< load (empty records count as 1)
  };

  std::vector<Shard> shards;
  std::uint64_t total_residues = 0;

  /// Relative load imbalance: max shard load / mean shard load − 1.
  /// 0 means perfectly balanced; the planner keeps this small whenever no
  /// single record exceeds a shard's fair share.
  double imbalance() const;
};

/// Plan `num_shards` shards over records with the given residue lengths.
/// num_shards is clamped to [1, record count]; an empty database yields a
/// plan with zero shards.
ShardPlan plan_shards(std::span<const std::uint32_t> lengths,
                      std::size_t num_shards);
ShardPlan plan_shards(const DbView& db, std::size_t num_shards);

struct ShardedSearchOptions {
  std::size_t num_shards = 1;

  /// Intra-shard scan threads (each shard's ParallelSearchEngine pool).
  std::size_t threads_per_shard = 1;

  /// Scatter shard scans across a pool of one thread per shard; false runs
  /// them sequentially on the calling thread (identical results).
  bool parallel_scatter = true;

  /// Capacity of each shard's private ProfileCache.
  std::size_t profile_cache_capacity = 32;

  /// Recovery attempts after a shard scan throws. Each retry runs the
  /// shard's records through the direct serial scan path on the gather
  /// thread (a healthy engine independent of the shard's pool); a shard
  /// that fails 1 + max_shard_retries times is reported as failed.
  std::size_t max_shard_retries = 1;

  /// Test hook mirroring serve's before_batch: invoked with (shard index,
  /// attempt) before every scan attempt, including recovery attempts. A
  /// throw from the hook is treated as that attempt failing. nullptr in
  /// production.
  std::function<void(std::size_t shard, std::size_t attempt)> before_shard;

  /// Optional observability sinks: every shard attempt becomes a
  /// `shard_scan` span on `trace_track` and feeds the `serve_shard_*`
  /// counters/histograms. Both must outlive the engine.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  std::size_t trace_track = 0;
};

/// One shard that exhausted its retry budget during a search.
struct ShardFailure {
  std::size_t shard = 0;
  std::size_t attempts = 0;  ///< scan attempts made (1 + retries)
  std::string reason;        ///< what() of the last failure
};

/// Result of one query of a sharded search.
struct ShardedSearchResult {
  RankedSearchResult ranked;  ///< database-order scores + global top-k

  /// True when every shard was scanned: ranked is then bit-identical to the
  /// unsharded search. False = partial results; records of the shards in
  /// `failures` were not scanned (their scores read 0 and they are absent
  /// from the top-k).
  bool complete = true;
  std::vector<ShardFailure> failures;

  /// Set by search_many_filtered in heuristic mode; `filter` then carries
  /// the query's candidate/rescan counters.
  bool filtered = false;
  FilterStats filter;
};

class ShardedSearchEngine {
 public:
  /// Shards over record views (spans are copied, viewed residues must
  /// outlive the engine).
  ShardedSearchEngine(const DbView& db, const ShardedSearchOptions& options);

  /// Zero-copy shards straight into an mmap-backed SWDB: every shard's view
  /// points into the one shared mapping, which the engine keeps alive.
  ShardedSearchEngine(std::shared_ptr<const seq::MappedSwdb> db,
                      const ShardedSearchOptions& options);

  ~ShardedSearchEngine();

  ShardedSearchEngine(const ShardedSearchEngine&) = delete;
  ShardedSearchEngine& operator=(const ShardedSearchEngine&) = delete;

  /// Scatter-gather search of one query. Bit-identical to the unsharded
  /// search_database / ParallelSearchEngine result when complete.
  ShardedSearchResult search_ranked(std::span<const std::uint8_t> query,
                                    const ScoringScheme& scheme,
                                    KernelKind kernel, std::size_t k,
                                    Backend backend = Backend::kAuto) const;

  /// Multi-query group: all queries share one pass over each shard chunk.
  /// Results are per query, in input order; a shard failure applies to the
  /// whole group (the pass is shared), so every result reports the same
  /// failures.
  std::vector<ShardedSearchResult> search_many(
      std::span<const std::span<const std::uint8_t>> queries,
      const ScoringScheme& scheme, KernelKind kernel, std::size_t k,
      Backend backend = Backend::kAuto) const;

  /// Two-stage filtered group search. Every shard screens the group with
  /// the banded stage-1 kernel (one shared pass per shard chunk, same
  /// scatter/retry discipline as search_many); candidates are then selected
  /// GLOBALLY from the gathered screens and rescanned exactly on the gather
  /// thread — so heuristic results are identical for every shard count,
  /// thread count, and backend. Mode kOff delegates to search_many
  /// (bit-identical to the unsharded search).
  std::vector<ShardedSearchResult> search_many_filtered(
      std::span<const std::span<const std::uint8_t>> queries,
      const ScoringScheme& scheme, KernelKind kernel, std::size_t k,
      const FilterConfig& config, Backend backend = Backend::kAuto) const;

  /// search_many_filtered plus a post-gather annotate_hits pass
  /// (align/annotate.h) per query, run on the merged GLOBAL top-k against
  /// the database-order view with the database's true residue total as the
  /// Karlin–Altschul search space — never per shard, so annotated hit
  /// scores/order are bit-identical to the unannotated overload for every
  /// shard count, thread count, and backend.
  std::vector<ShardedSearchResult> search_many_filtered(
      std::span<const std::span<const std::uint8_t>> queries,
      const ScoringScheme& scheme, KernelKind kernel, std::size_t k,
      const FilterConfig& config, const AnnotateConfig& annotate,
      const KarlinAltschulParams& params,
      Backend backend = Backend::kAuto) const;

  std::size_t num_shards() const { return shards_.size(); }
  std::size_t db_records() const { return db_records_; }
  const ShardPlan& plan() const { return plan_; }

  /// Total residues across the database (true span sizes, not the planner's
  /// load costs, which count empty records as 1).
  std::uint64_t db_residues() const { return db_residues_; }

  struct Stats {
    std::uint64_t scans = 0;      ///< successful shard-scan attempts
    std::uint64_t retries = 0;    ///< recovery attempts after a failure
    std::uint64_t failures = 0;   ///< shards that exhausted their budget
    std::uint64_t group_passes = 0;  ///< search_many / search_ranked calls
  };
  Stats stats() const;

 private:
  struct ShardState;

  /// Per-query outcome of one shard scan, hits already in global indices.
  struct ShardOutcome {
    std::vector<RankedSearchResult> per_query;
    bool ok = false;
    std::size_t attempts = 0;
    std::string reason;
  };

  /// Per-query stage-1 screens of one shard, shard-local record order.
  struct ShardScreenOutcome {
    std::vector<ScreenResult> per_query;
    bool ok = false;
    std::size_t attempts = 0;
    std::string reason;
  };

  void init(const DbView& db, std::span<const std::uint32_t> lengths);
  ShardOutcome scan_shard(std::size_t shard_index,
                          std::span<const std::span<const std::uint8_t>>
                              queries,
                          const ScoringScheme& scheme, KernelKind kernel,
                          Backend backend, std::size_t k) const;
  /// Recovery path: serial search_range over the shard view, no pool.
  std::vector<RankedSearchResult> scan_shard_serial(
      const ShardState& shard,
      std::span<const SearchProfiles* const> profiles, std::size_t k) const;

  /// Stage-1 variant of scan_shard: same profile sharing, retry budget,
  /// and metrics, but each attempt screens instead of scanning exactly
  /// (recovery attempts use serial screen_range on the gather thread).
  ShardScreenOutcome screen_shard(std::size_t shard_index,
                                  std::span<const std::span<const std::uint8_t>>
                                      queries,
                                  const ScoringScheme& scheme,
                                  KernelKind kernel, Backend backend,
                                  std::size_t band) const;

  ShardedSearchOptions options_;
  ShardPlan plan_;
  std::size_t db_records_ = 0;
  std::uint64_t db_residues_ = 0;
  DbView global_view_;  ///< database-order spans, for candidate rescans
  std::vector<std::unique_ptr<ShardState>> shards_;
  std::shared_ptr<const seq::MappedSwdb> mapped_;  ///< keeps mapping alive
  std::unique_ptr<ThreadPool> scatter_pool_;       ///< null when serial

  /// Leaf capability: only the Stats aggregate lives under it, and no other
  /// lock is ever acquired while it is held (shard scans update it between
  /// engine passes, never inside one).
  mutable util::Mutex stats_mutex_;
  mutable Stats stats_ SWDUAL_GUARDED_BY(stats_mutex_);
};

}  // namespace swdual::align
