// Inter-sequence vectorized banded Smith–Waterman (the filter screen).
//
// Stage-1 kernel of the two-stage filtered search (search.h): one batch of
// database sequences is banded-aligned against the query simultaneously,
// one per SIMD lane, in the same lane-per-sequence layout as the interseq
// kernel — longest-first batching, per-column dprofile, SWDB v2 pre-sorted
// order detection. The DP is restricted per lane to a diagonal band of
// half-width `band` around j = ⌊i·n_l/m⌋, so the screen costs O(m·band)
// per record instead of O(m·n).
//
// Scores are bit-identical to the scalar banded_gotoh_score (banded.h) for
// every lane that does not overflow: the 8-bit saturating tier runs first
// and saturated lanes are regrouped through a 16-bit pass; lanes that
// saturate even there come back with overflow set and the caller rescans
// them with the 32-bit scalar banded kernel.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "align/kernel_interseq.h"
#include "align/scoring.h"

namespace swdual::align {

struct BandedBatchResult {
  std::vector<int> scores;     ///< banded score per input sequence
  std::vector<bool> overflow;  ///< saturated even at 16 bits (rescan!)
  std::vector<bool> edge_hit;  ///< best banded cell sat on the band boundary
  std::uint64_t cells = 0;     ///< banded DP cells computed (all tiers)
};

/// Banded-screen one query against many database sequences, one SIMD batch
/// at a time, on the best available backend (SWDUAL_FORCE_BACKEND
/// overrides). `band` must be ≥ 1.
BandedBatchResult banded_screen(std::span<const std::uint8_t> query,
                                const SequenceViews& db,
                                const ScoringScheme& scheme, std::size_t band);

}  // namespace swdual::align
