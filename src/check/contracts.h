// Contract macro layer for correctness checks (DESIGN.md "Correctness
// tooling").
//
// Two tiers, one shared failure path (util/error.h):
//
//   SWDUAL_CHECK(expr, msg)   — always-on invariant; throws swdual::Error.
//                               Defined in util/error.h; validators and the
//                               schedulers' certified guarantees use it, so
//                               it never compiles out.
//   SWDUAL_DCHECK(expr, msg)  — debug contract for hot paths. Compiles to a
//                               no-op (expression unevaluated, variables
//                               still "used") when the project is configured
//                               with SWDUAL_CONTRACTS=OFF; otherwise behaves
//                               exactly like SWDUAL_CHECK.
//
// The CMake option SWDUAL_CONTRACTS (default ON) sets the preprocessor
// symbol SWDUAL_CONTRACTS_ENABLED on every target via swdual_options.
// Compiling a translation unit outside the build system leaves the symbol
// undefined, which this header treats as enabled — contracts should only
// ever disappear on purpose.
#pragma once

#include "util/error.h"

#ifndef SWDUAL_CONTRACTS_ENABLED
#define SWDUAL_CONTRACTS_ENABLED 1
#endif

namespace swdual::check {

/// Build-time state of the debug-contract tier, for tests and diagnostics.
constexpr bool contracts_enabled() { return SWDUAL_CONTRACTS_ENABLED != 0; }

}  // namespace swdual::check

#if SWDUAL_CONTRACTS_ENABLED
#define SWDUAL_DCHECK(expr, msg) SWDUAL_CHECK(expr, msg)
#else
// Keep the expression parsed (so contract rot is still a compile error and
// the variables it names stay "used") without evaluating it.
#define SWDUAL_DCHECK(expr, msg) \
  do {                           \
    (void)sizeof((expr) ? 1 : 0);\
    (void)sizeof(msg);           \
  } while (0)
#endif
