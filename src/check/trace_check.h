// Cross-validation between static schedules and DES execution traces
// (DESIGN.md "Correctness tooling").
//
// The golden-trace and bit-identical-merge tests depend on the DES replaying
// exactly what the scheduler planned. cross_validate_trace proves it: every
// assignment of the Schedule appears in the ExecutionTrace exactly once, on
// the same PE, with the same duration, in the same per-PE order, at the
// work-conserving compaction of the planned start times (simulate_static's
// contract — for the compact schedules every policy in this library emits,
// that means the *same* start times). validate_trace is the schedule-free
// variant for dynamic policies (self-scheduling), checking the trace's
// internal invariants against the task set alone.
#pragma once

#include <vector>

#include "platform/des.h"
#include "sched/schedule.h"
#include "sched/task.h"

namespace swdual::check {

/// Prove `trace` is exactly the DES replay of `schedule`: same placements,
/// same per-PE execution order, durations equal to the task's processing
/// time on its PE class, starts equal to the back-to-back compaction of the
/// plan (and never later than planned), and internally consistent
/// makespan/busy/idle aggregates. Throws swdual::Error naming the first
/// offending task and PE.
void cross_validate_trace(const platform::ExecutionTrace& trace,
                          const sched::Schedule& schedule,
                          const std::vector<sched::Task>& tasks,
                          const sched::HybridPlatform& platform);

/// Structural validation of a trace without a reference schedule (dynamic
/// policies): every task executed exactly once on an existing PE, duration
/// matching its processing time there, no overlap on any PE, non-negative
/// starts, and consistent aggregates. Throws swdual::Error on violation.
void validate_trace(const platform::ExecutionTrace& trace,
                    const std::vector<sched::Task>& tasks,
                    const sched::HybridPlatform& platform);

}  // namespace swdual::check
