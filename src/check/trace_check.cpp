#include "check/trace_check.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>

#include "util/error.h"

namespace swdual::check {

namespace {

constexpr double kTol = 1e-9;

using PeKey = std::pair<int, std::size_t>;

PeKey key_of(const sched::PeId& pe) {
  return {static_cast<int>(pe.type), pe.index};
}

std::map<std::size_t, const sched::Task*> index_tasks(
    const std::vector<sched::Task>& tasks) {
  std::map<std::size_t, const sched::Task*> by_id;
  for (const sched::Task& task : tasks) by_id[task.id] = &task;
  SWDUAL_CHECK(by_id.size() == tasks.size(), "duplicate task ids in input");
  return by_id;
}

/// Check the recomputable aggregate fields of a trace against its entries.
void check_aggregates(const platform::ExecutionTrace& trace,
                      const sched::HybridPlatform& platform) {
  double makespan = 0.0;
  double cpu_busy = 0.0;
  double gpu_busy = 0.0;
  for (const platform::TraceEntry& entry : trace.entries) {
    makespan = std::max(makespan, entry.end);
    const double duration = entry.end - entry.start;
    if (entry.pe.type == sched::PeType::kCpu) {
      cpu_busy += duration;
    } else {
      gpu_busy += duration;
    }
  }
  SWDUAL_CHECK(std::abs(trace.makespan - makespan) <= kTol * (1 + makespan),
               "trace makespan disagrees with its entries");
  SWDUAL_CHECK(std::abs(trace.cpu_busy - cpu_busy) <= kTol * (1 + cpu_busy),
               "trace cpu_busy disagrees with its entries");
  SWDUAL_CHECK(std::abs(trace.gpu_busy - gpu_busy) <= kTol * (1 + gpu_busy),
               "trace gpu_busy disagrees with its entries");
  const double idle = makespan * static_cast<double>(platform.total()) -
                      cpu_busy - gpu_busy;
  SWDUAL_CHECK(std::abs(trace.total_idle - idle) <= kTol * (1 + std::abs(idle)),
               "trace total_idle disagrees with its entries");
}

}  // namespace

void cross_validate_trace(const platform::ExecutionTrace& trace,
                          const sched::Schedule& schedule,
                          const std::vector<sched::Task>& tasks,
                          const sched::HybridPlatform& platform) {
  const auto by_id = index_tasks(tasks);
  SWDUAL_CHECK(trace.entries.size() == schedule.size(),
               "trace has " + std::to_string(trace.entries.size()) +
                   " entries for a schedule of " +
                   std::to_string(schedule.size()) + " assignment(s)");

  // Group both sides per PE, ordered by start time (the DES replay order).
  std::map<PeKey, std::vector<const sched::Assignment*>> planned;
  for (const sched::Assignment& a : schedule.assignments()) {
    SWDUAL_CHECK(a.pe.index < platform.count(a.pe.type),
                 "schedule uses nonexistent PE " + pe_name(a.pe));
    planned[key_of(a.pe)].push_back(&a);
  }
  std::map<PeKey, std::vector<const platform::TraceEntry*>> executed;
  for (const platform::TraceEntry& entry : trace.entries) {
    SWDUAL_CHECK(entry.pe.index < platform.count(entry.pe.type),
                 "trace uses nonexistent PE " + pe_name(entry.pe));
    executed[key_of(entry.pe)].push_back(&entry);
  }

  for (auto& [pe, list] : planned) {
    std::stable_sort(list.begin(), list.end(),
                     [](const sched::Assignment* a,
                        const sched::Assignment* b) {
                       return a->start < b->start;
                     });
    auto it = executed.find(pe);
    SWDUAL_CHECK(it != executed.end() && it->second.size() == list.size(),
                 "PE " + pe_name(list.front()->pe) + " planned " +
                     std::to_string(list.size()) + " task(s) but executed " +
                     std::to_string(it == executed.end() ? 0
                                                        : it->second.size()));
    auto& run = it->second;
    std::stable_sort(run.begin(), run.end(),
                     [](const platform::TraceEntry* a,
                        const platform::TraceEntry* b) {
                       return a->start < b->start;
                     });

    // Replay must keep the planned order and compact back-to-back from 0.
    double clock = 0.0;
    for (std::size_t i = 0; i < list.size(); ++i) {
      const sched::Assignment& plan = *list[i];
      const platform::TraceEntry& entry = *run[i];
      const std::string where =
          "task " + std::to_string(plan.task_id) + " on " + pe_name(plan.pe);
      SWDUAL_CHECK(entry.task_id == plan.task_id,
                   "execution order diverged from the plan: position " +
                       std::to_string(i) + " on " + pe_name(plan.pe) +
                       " ran task " + std::to_string(entry.task_id) +
                       " instead of task " + std::to_string(plan.task_id));
      const auto task_it = by_id.find(plan.task_id);
      SWDUAL_CHECK(task_it != by_id.end(),
                   "schedule places unknown task " +
                       std::to_string(plan.task_id));
      const double expected = task_it->second->time_on(plan.pe.type);
      const double duration = entry.end - entry.start;
      SWDUAL_CHECK(std::abs(duration - expected) <= kTol * (1 + expected),
                   "trace duration " + std::to_string(duration) + " for " +
                       where + " differs from processing time " +
                       std::to_string(expected));
      SWDUAL_CHECK(std::abs(plan.duration() - expected) <=
                       kTol * (1 + expected),
                   "planned duration differs from processing time for " +
                       where);
      SWDUAL_CHECK(std::abs(entry.start - clock) <= kTol * (1 + clock),
                   "trace start " + std::to_string(entry.start) + " for " +
                       where + " is not the compaction of the plan (expected " +
                       std::to_string(clock) + ")");
      SWDUAL_CHECK(entry.start <= plan.start + kTol * (1 + plan.start),
                   "trace starts " + where + " later than planned");
      clock += expected;
    }
  }
  // Trace-only PEs would have been caught by the per-PE size comparison
  // unless the schedule never planned them — catch that here.
  for (const auto& [pe, run] : executed) {
    SWDUAL_CHECK(planned.count(pe) == 1,
                 "trace executed " + std::to_string(run.size()) +
                     " task(s) on " + pe_name(run.front()->pe) +
                     " which the schedule never planned");
  }

  check_aggregates(trace, platform);
  SWDUAL_CHECK(trace.makespan <= schedule.makespan() * (1 + kTol) + kTol,
               "work-conserving replay finished later than the plan");
}

void validate_trace(const platform::ExecutionTrace& trace,
                    const std::vector<sched::Task>& tasks,
                    const sched::HybridPlatform& platform) {
  const auto by_id = index_tasks(tasks);

  std::map<std::size_t, std::size_t> seen;
  std::map<PeKey, std::vector<const platform::TraceEntry*>> per_pe;
  for (const platform::TraceEntry& entry : trace.entries) {
    const auto it = by_id.find(entry.task_id);
    SWDUAL_CHECK(it != by_id.end(), "trace executed unknown task " +
                                        std::to_string(entry.task_id));
    SWDUAL_CHECK(++seen[entry.task_id] == 1,
                 "task " + std::to_string(entry.task_id) +
                     " executed more than once");
    SWDUAL_CHECK(entry.pe.index < platform.count(entry.pe.type),
                 "trace uses nonexistent PE " + pe_name(entry.pe));
    SWDUAL_CHECK(entry.start >= -kTol,
                 "negative start for task " + std::to_string(entry.task_id));
    const double expected = it->second->time_on(entry.pe.type);
    const double duration = entry.end - entry.start;
    SWDUAL_CHECK(std::abs(duration - expected) <= kTol * (1 + expected),
                 "duration mismatch for task " +
                     std::to_string(entry.task_id) + " on " +
                     pe_name(entry.pe));
    per_pe[key_of(entry.pe)].push_back(&entry);
  }
  SWDUAL_CHECK(seen.size() == tasks.size(),
               "trace misses " + std::to_string(tasks.size() - seen.size()) +
                   " task(s)");

  for (auto& [pe, list] : per_pe) {
    std::stable_sort(list.begin(), list.end(),
                     [](const platform::TraceEntry* a,
                        const platform::TraceEntry* b) {
                       return a->start < b->start;
                     });
    for (std::size_t i = 1; i < list.size(); ++i) {
      SWDUAL_CHECK(list[i]->start >= list[i - 1]->end - kTol,
                   "overlap on " + pe_name(list[i]->pe) + " between tasks " +
                       std::to_string(list[i - 1]->task_id) + " and " +
                       std::to_string(list[i]->task_id));
    }
  }
  check_aggregates(trace, platform);
}

}  // namespace swdual::check
