#include "check/bounds.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "check/contracts.h"
#include "util/error.h"

namespace swdual::check {

namespace {

constexpr double kRelTol = 1e-12;

bool leq(double a, double b) { return a <= b * (1.0 + kRelTol) + kRelTol; }

/// The paper's λ-feasibility test in its fractional relaxation: mandatory
/// placements enforced, free tasks split by the continuous minimization
/// knapsack. True is a *necessary* condition for a schedule of makespan ≤ λ
/// to exist, so the smallest true λ lower-bounds the optimum.
bool fractional_feasible(const std::vector<sched::Task>& by_ratio,
                         const sched::HybridPlatform& platform,
                         double lambda) {
  const double m = static_cast<double>(platform.num_cpus);
  const double k = static_cast<double>(platform.num_gpus);

  double mandatory_gpu = 0.0;
  double cpu_area = 0.0;
  std::vector<const sched::Task*> free_tasks;
  free_tasks.reserve(by_ratio.size());
  for (const sched::Task& task : by_ratio) {
    const bool fits_cpu = platform.num_cpus > 0 && leq(task.cpu_time, lambda);
    const bool fits_gpu = platform.num_gpus > 0 && leq(task.gpu_time, lambda);
    if (!fits_cpu && !fits_gpu) return false;  // too long everywhere
    if (!fits_cpu) {
      mandatory_gpu += task.gpu_time;
    } else if (!fits_gpu) {
      cpu_area += task.cpu_time;
    } else {
      free_tasks.push_back(&task);
    }
  }
  if (!leq(mandatory_gpu, k * lambda)) return false;
  if (!leq(cpu_area, m * lambda)) return false;

  // Continuous knapsack: by_ratio is sorted by decreasing acceleration, so
  // filling in order minimizes the CPU workload left behind (Fig. 4).
  double gpu_budget = k * lambda - mandatory_gpu;
  for (const sched::Task* task : free_tasks) {
    if (gpu_budget >= task->gpu_time) {
      gpu_budget -= task->gpu_time;
    } else if (task->gpu_time > 0) {
      const double fraction_on_gpu =
          gpu_budget > 0 ? gpu_budget / task->gpu_time : 0.0;
      gpu_budget = 0.0;
      cpu_area += task->cpu_time * (1.0 - fraction_on_gpu);
    } else {
      gpu_budget = 0.0;
    }
  }
  return leq(cpu_area, m * lambda);
}

}  // namespace

LowerBounds schedule_lower_bounds(const std::vector<sched::Task>& tasks,
                                  const sched::HybridPlatform& platform) {
  SWDUAL_REQUIRE(platform.total() > 0, "platform has no PEs");
  LowerBounds bounds;
  if (tasks.empty()) return bounds;

  double fastest_sum = 0.0;
  for (const sched::Task& task : tasks) {
    double fastest = std::numeric_limits<double>::infinity();
    if (platform.num_cpus > 0) fastest = std::min(fastest, task.cpu_time);
    if (platform.num_gpus > 0) fastest = std::min(fastest, task.gpu_time);
    SWDUAL_REQUIRE(std::isfinite(fastest) && fastest >= 0,
                   "task " + std::to_string(task.id) +
                       " has no finite processing time on this platform");
    bounds.longest_task = std::max(bounds.longest_task, fastest);
    fastest_sum += fastest;
  }
  bounds.aggregate_area =
      fastest_sum / static_cast<double>(platform.total());

  // Knapsack bound: bisect the fractional λ-feasibility threshold. Both
  // simpler bounds are necessary conditions of the test, so start there.
  std::vector<sched::Task> by_ratio = tasks;
  std::stable_sort(by_ratio.begin(), by_ratio.end(),
                   [](const sched::Task& a, const sched::Task& b) {
                     return a.accel() > b.accel();
                   });
  double lo = std::max(bounds.longest_task, bounds.aggregate_area);
  double hi = std::max(lo, 1e-300);
  while (!fractional_feasible(by_ratio, platform, hi)) hi *= 2.0;
  if (fractional_feasible(by_ratio, platform, lo)) {
    hi = lo;
  } else {
    for (int iter = 0; iter < 100 && (hi - lo) > 1e-12 * hi; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (fractional_feasible(by_ratio, platform, mid)) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
  }
  bounds.knapsack = hi;
  bounds.certified =
      std::max({bounds.longest_task, bounds.aggregate_area, bounds.knapsack});
  SWDUAL_DCHECK(bounds.certified >= bounds.longest_task - 1e-12,
                "certified bound lost to the longest-task bound");
  return bounds;
}

BoundCheckReport check_approximation_bound(
    const sched::Schedule& schedule, const std::vector<sched::Task>& tasks,
    const sched::HybridPlatform& platform, double factor, double slack) {
  SWDUAL_REQUIRE(factor >= 1.0, "approximation factor below 1 is vacuous");
  SWDUAL_REQUIRE(slack >= 1.0, "slack must not tighten the guarantee");

  BoundCheckReport report;
  report.bounds = schedule_lower_bounds(tasks, platform);
  report.makespan = schedule.makespan();
  report.factor = factor;
  report.ratio = report.bounds.certified > 0
                     ? report.makespan / report.bounds.certified
                     : 0.0;

  const double limit = factor * report.bounds.certified * slack;
  if (report.makespan > limit + kRelTol) {
    std::ostringstream os;
    os << "approximation bound violated: makespan " << report.makespan
       << " > " << factor << " x certified lower bound "
       << report.bounds.certified << " (x" << slack << " slack = " << limit
       << "); bounds: longest_task " << report.bounds.longest_task
       << ", aggregate_area " << report.bounds.aggregate_area << ", knapsack "
       << report.bounds.knapsack << "; ratio " << report.ratio << " on m="
       << platform.num_cpus << " k=" << platform.num_gpus << " with "
       << tasks.size() << " task(s)";
    throw Error(os.str());
  }
  return report;
}

}  // namespace swdual::check
