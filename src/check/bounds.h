// Approximation-bound contract checker for the dual-approximation scheduler
// (paper §III; DESIGN.md "Correctness tooling").
//
// The SWDUAL guarantee — makespan ≤ 2·OPT — is not directly testable because
// OPT is unknown, but it becomes testable against a *certified lower bound*
// LB ≤ OPT that the dual-approximation step can always satisfy. This header
// computes three such bounds and asserts the guarantee against their maximum:
//
//   longest_task    L    = max_j min(p_j, p̄_j): every task runs entirely on
//                          one PE, taking at least its faster time.
//   aggregate_area  A    = Σ_j min(p_j, p̄_j) / (m + k): each task occupies
//                          at least its faster time of some PE, and total
//                          busy time across m + k PEs is at most (m+k)·λ.
//   knapsack        K    = the smallest λ passing the paper's λ-feasibility
//                          test in its fractional relaxation: tasks with
//                          p_j > λ are forced onto the GPUs (their area must
//                          fit in kλ), tasks with p̄_j > λ onto the CPUs
//                          (area ≤ mλ), and the free tasks split by the
//                          continuous minimization knapsack (5)–(7) — fill
//                          GPUs by decreasing acceleration ratio p/p̄ up to
//                          area kλ, spill the rest to the CPUs, which must
//                          fit in mλ. Every real λ-schedule satisfies all
//                          three conditions, so K ≤ OPT.
//
// Soundness of the 2·LB assertion (not merely 2·OPT): a fractional-feasible
// λ is always a YES for dual_approx_step — the integral greedy keeps the
// boundary task j_last entirely on the GPUs, so it leaves *at most* the
// fractional CPU workload — and a NO at λ implies fractional infeasibility.
// The binary search in swdual_schedule therefore converges its YES frontier
// to within its ε of a λ ≤ K, giving makespan ≤ 2·K/(1−ε). The default
// slack absorbs that ε and the floating-point tolerances.
#pragma once

#include <vector>

#include "sched/schedule.h"
#include "sched/task.h"

namespace swdual::check {

/// The guaranteed worst-case ratios asserted by check_approximation_bound.
inline constexpr double kDualApproxFactor = 2.0;     ///< swdual_schedule
inline constexpr double kRefinedApproxFactor = 1.5;  ///< refined (3/2) variant

/// The certified lower bounds on the optimal makespan, individually.
struct LowerBounds {
  double longest_task = 0.0;    ///< L: max over tasks of min(p, p̄)
  double aggregate_area = 0.0;  ///< A: Σ min(p, p̄) / (m + k)
  double knapsack = 0.0;        ///< K: fractional λ-feasibility threshold
  double certified = 0.0;       ///< max(L, A, K) — the bound checked against
};

/// Compute all lower bounds for a task set on a platform. The platform must
/// have at least one PE, and every task must be runnable on some PE class
/// that exists (throws swdual::InvalidArgument otherwise).
LowerBounds schedule_lower_bounds(const std::vector<sched::Task>& tasks,
                                  const sched::HybridPlatform& platform);

/// Outcome of one bound check (also returned on success, for reporting).
struct BoundCheckReport {
  LowerBounds bounds;
  double makespan = 0.0;
  double factor = kDualApproxFactor;
  double ratio = 0.0;  ///< makespan / certified LB (0 for an empty workload)
};

/// Assert `schedule.makespan() ≤ factor · LB · slack` where LB is the
/// certified lower bound of `schedule_lower_bounds`. Throws swdual::Error
/// with the full bound breakdown on violation; returns the report otherwise.
/// The schedule is assumed structurally valid (run validate_schedule first).
/// `slack` absorbs the binary search's ε and floating-point tolerance; the
/// default covers swdual_schedule's ε ≤ 1e-3.
BoundCheckReport check_approximation_bound(
    const sched::Schedule& schedule, const std::vector<sched::Task>& tasks,
    const sched::HybridPlatform& platform, double factor = kDualApproxFactor,
    double slack = 1.01);

}  // namespace swdual::check
