// Wire format for the master–slave protocol messages.
//
// The in-process runtime moves TaskOrder/TaskReport structs through queues;
// a distributed deployment (the paper ran master and slaves as separate
// processes) needs them as bytes. This module defines a framed, checksummed,
// little-endian encoding:
//
//   [frame]  magic 'SWMS', type u8, payload length u32, payload, crc32 u32
//
// Decoding validates magic, bounds, and checksum, and never trusts lengths
// beyond the buffer (malformed frames throw IoError rather than read out of
// bounds). Round-trip fidelity is property-tested.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "master/protocol.h"

namespace swdual::master {

enum class MessageType : std::uint8_t {
  kRegister = 1,   ///< worker announces itself: payload = worker id + PE
  kTaskOrder = 2,  ///< master → worker
  kTaskReport = 3, ///< worker → master
  kShutdown = 4,   ///< master → worker, no payload
};

/// Worker registration payload (Fig. 6's "Register with master" step).
struct RegisterMsg {
  std::size_t worker_id = 0;
  sched::PeId pe;
};

/// Encode one message into a framed byte buffer.
std::vector<std::uint8_t> encode_register(const RegisterMsg& msg);
std::vector<std::uint8_t> encode_order(const TaskOrder& order);
std::vector<std::uint8_t> encode_report(const TaskReport& report);
std::vector<std::uint8_t> encode_shutdown();

/// Peek the type of a framed buffer (throws IoError on malformed frames).
MessageType frame_type(const std::vector<std::uint8_t>& frame);

/// Decode (throws IoError on malformed/corrupt frames or wrong type).
RegisterMsg decode_register(const std::vector<std::uint8_t>& frame);
TaskOrder decode_order(const std::vector<std::uint8_t>& frame);
TaskReport decode_report(const std::vector<std::uint8_t>& frame);

}  // namespace swdual::master
