#include "master/wire.h"

#include <array>
#include <cstring>

#include "util/crc32.h"
#include "util/error.h"

namespace swdual::master {

namespace {

constexpr std::array<std::uint8_t, 4> kMagic = {'S', 'W', 'M', 'S'};
constexpr std::size_t kHeaderSize = 4 + 1 + 4;  // magic + type + length
constexpr std::size_t kTrailerSize = 4;         // crc32

/// Append-only little-endian writer.
class Writer {
 public:
  template <typename T>
  void put(T value) {
    static_assert(std::is_unsigned_v<T>);
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      bytes_.push_back(static_cast<std::uint8_t>((value >> (8 * i)) & 0xff));
    }
  }
  void put_f64(double value) {
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    put(bits);
  }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian reader.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  template <typename T>
  T get() {
    static_assert(std::is_unsigned_v<T>);
    if (position_ + sizeof(T) > bytes_.size()) {
      throw IoError("wire frame truncated");
    }
    T value = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      value = static_cast<T>(
          value | static_cast<T>(bytes_[position_ + i]) << (8 * i));
    }
    position_ += sizeof(T);
    return value;
  }
  double get_f64() {
    const std::uint64_t bits = get<std::uint64_t>();
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }
  bool exhausted() const { return position_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t position_ = 0;
};

std::vector<std::uint8_t> frame(MessageType type,
                                std::vector<std::uint8_t> payload) {
  SWDUAL_REQUIRE(payload.size() <= 0xffffffffu, "payload too large");
  // Constructed from the magic rather than insert-into-empty: GCC 12's
  // -Wstringop-overflow misfires on the latter at -O2 (PR 105329-style).
  std::vector<std::uint8_t> out(kMagic.begin(), kMagic.end());
  out.reserve(kHeaderSize + payload.size() + kTrailerSize);
  out.push_back(static_cast<std::uint8_t>(type));
  const auto length = static_cast<std::uint32_t>(payload.size());
  for (std::size_t i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((length >> (8 * i)) & 0xff));
  }
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint32_t checksum =
      crc32({out.data(), out.size()});  // header + payload
  for (std::size_t i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((checksum >> (8 * i)) & 0xff));
  }
  return out;
}

/// Validate framing and return the payload view.
std::span<const std::uint8_t> unframe(const std::vector<std::uint8_t>& bytes,
                                      MessageType expected) {
  if (bytes.size() < kHeaderSize + kTrailerSize) {
    throw IoError("wire frame too short");
  }
  if (!std::equal(kMagic.begin(), kMagic.end(), bytes.begin())) {
    throw IoError("wire frame bad magic");
  }
  std::uint32_t length = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(bytes[5 + i]) << (8 * i);
  }
  if (bytes.size() != kHeaderSize + length + kTrailerSize) {
    throw IoError("wire frame length mismatch");
  }
  std::uint32_t stored = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(bytes[bytes.size() - 4 + i])
              << (8 * i);
  }
  const std::uint32_t computed =
      crc32({bytes.data(), bytes.size() - kTrailerSize});
  if (stored != computed) throw IoError("wire frame checksum mismatch");
  const auto type = static_cast<MessageType>(bytes[4]);
  if (type != expected) throw IoError("wire frame has unexpected type");
  return {bytes.data() + kHeaderSize, length};
}

}  // namespace

MessageType frame_type(const std::vector<std::uint8_t>& frame_bytes) {
  if (frame_bytes.size() < kHeaderSize + kTrailerSize) {
    throw IoError("wire frame too short");
  }
  if (!std::equal(kMagic.begin(), kMagic.end(), frame_bytes.begin())) {
    throw IoError("wire frame bad magic");
  }
  const auto type = static_cast<MessageType>(frame_bytes[4]);
  switch (type) {
    case MessageType::kRegister:
    case MessageType::kTaskOrder:
    case MessageType::kTaskReport:
    case MessageType::kShutdown:
      return type;
  }
  throw IoError("wire frame unknown type");
}

std::vector<std::uint8_t> encode_register(const RegisterMsg& msg) {
  Writer writer;
  writer.put<std::uint64_t>(msg.worker_id);
  writer.put<std::uint8_t>(msg.pe.type == sched::PeType::kGpu ? 1 : 0);
  writer.put<std::uint64_t>(msg.pe.index);
  return frame(MessageType::kRegister, writer.take());
}

RegisterMsg decode_register(const std::vector<std::uint8_t>& frame_bytes) {
  Reader reader(unframe(frame_bytes, MessageType::kRegister));
  RegisterMsg msg;
  msg.worker_id = reader.get<std::uint64_t>();
  msg.pe.type = reader.get<std::uint8_t>() == 1 ? sched::PeType::kGpu
                                                : sched::PeType::kCpu;
  msg.pe.index = reader.get<std::uint64_t>();
  if (!reader.exhausted()) throw IoError("register payload has extra bytes");
  return msg;
}

std::vector<std::uint8_t> encode_order(const TaskOrder& order) {
  Writer writer;
  writer.put<std::uint64_t>(order.task_id);
  writer.put<std::uint64_t>(order.query_index);
  return frame(MessageType::kTaskOrder, writer.take());
}

TaskOrder decode_order(const std::vector<std::uint8_t>& frame_bytes) {
  Reader reader(unframe(frame_bytes, MessageType::kTaskOrder));
  TaskOrder order;
  order.task_id = reader.get<std::uint64_t>();
  order.query_index = reader.get<std::uint64_t>();
  if (!reader.exhausted()) throw IoError("order payload has extra bytes");
  return order;
}

std::vector<std::uint8_t> encode_report(const TaskReport& report) {
  Writer writer;
  writer.put<std::uint64_t>(report.task_id);
  writer.put<std::uint64_t>(report.query_index);
  writer.put<std::uint64_t>(report.worker_id);
  writer.put<std::uint8_t>(report.pe.type == sched::PeType::kGpu ? 1 : 0);
  writer.put<std::uint64_t>(report.pe.index);
  writer.put<std::uint8_t>(report.failed ? 1 : 0);
  writer.put<std::uint64_t>(report.cells);
  writer.put_f64(report.wall_seconds);
  writer.put_f64(report.virtual_seconds);
  writer.put<std::uint64_t>(report.scores.size());
  for (int score : report.scores) {
    writer.put<std::uint32_t>(static_cast<std::uint32_t>(score));
  }
  return frame(MessageType::kTaskReport, writer.take());
}

TaskReport decode_report(const std::vector<std::uint8_t>& frame_bytes) {
  Reader reader(unframe(frame_bytes, MessageType::kTaskReport));
  TaskReport report;
  report.task_id = reader.get<std::uint64_t>();
  report.query_index = reader.get<std::uint64_t>();
  report.worker_id = reader.get<std::uint64_t>();
  report.pe.type = reader.get<std::uint8_t>() == 1 ? sched::PeType::kGpu
                                                   : sched::PeType::kCpu;
  report.pe.index = reader.get<std::uint64_t>();
  report.failed = reader.get<std::uint8_t>() != 0;
  report.cells = reader.get<std::uint64_t>();
  report.wall_seconds = reader.get_f64();
  report.virtual_seconds = reader.get_f64();
  const auto count = reader.get<std::uint64_t>();
  // Guard against hostile lengths before allocating.
  if (count * 4 > frame_bytes.size()) {
    throw IoError("report score count exceeds frame size");
  }
  report.scores.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    report.scores.push_back(
        static_cast<std::int32_t>(reader.get<std::uint32_t>()));
  }
  if (!reader.exhausted()) throw IoError("report payload has extra bytes");
  return report;
}

std::vector<std::uint8_t> encode_shutdown() {
  return frame(MessageType::kShutdown, {});
}

}  // namespace swdual::master
