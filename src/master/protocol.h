// Message protocol between the SWDUAL master and its workers (Fig. 6).
//
// The paper runs master and slaves as processes; here they are threads and
// the transport is a closable in-process queue, but the protocol steps are
// the paper's: workers register, the master allocates tasks (one task = one
// query against the whole database), workers execute and send results, the
// master merges. Registration is implicit in construction; shutdown is the
// command queue's end-of-stream.
#pragma once

#include <cstdint>
#include <vector>

#include "align/search.h"
#include "sched/task.h"

namespace swdual::master {

/// A work order: run query `query_index` against the whole database.
struct TaskOrder {
  std::size_t task_id = 0;
  std::size_t query_index = 0;
};

/// A completed task's report back to the master.
struct TaskReport {
  std::size_t task_id = 0;
  std::size_t query_index = 0;
  std::size_t worker_id = 0;
  sched::PeId pe;
  bool failed = false;            ///< worker fault — master must reassign
  std::vector<int> scores;        ///< score per database record
  std::uint64_t cells = 0;        ///< DP cells computed
  double wall_seconds = 0.0;      ///< real kernel time on this host
  double virtual_seconds = 0.0;   ///< modeled time on the paper's hardware

  /// Filtered tasks rank on the worker (only screened candidates are
  /// eligible for hits, which a merge-side top() over `scores` cannot
  /// reconstruct). When `ranked` is set the master takes `hits` verbatim;
  /// `scores` then holds screened lower bounds with candidates exact.
  bool ranked = false;
  std::vector<align::SearchHit> hits;
  align::FilterStats filter;
};

}  // namespace swdual::master
