// The SWDUAL master (Fig. 6): builds tasks, allocates them to workers with a
// pluggable policy, dispatches, collects and merges results.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "align/annotate.h"
#include "align/profile_cache.h"
#include "align/search.h"
#include "master/protocol.h"
#include "platform/perf_model.h"
#include "sched/schedule.h"

namespace swdual::obs {
class MetricsRegistry;
class Tracer;
}  // namespace swdual::obs

namespace swdual::master {

/// Allocation policies the master can apply (paper's SWDUAL plus the
/// related-work baselines it is compared against).
enum class AllocationPolicy {
  kSwdual,          ///< dual-approximation (paper §III) — the contribution
  kSwdualRefined,   ///< + local-search refinement
  kSelfScheduling,  ///< dynamic, one task at a time [10]
  kEqualPower,      ///< round-robin deal [11]
  kProportional,    ///< static proportional split [12]
  kLpt,             ///< classical LPT/earliest-completion
};

const char* policy_name(AllocationPolicy policy);

struct MasterConfig {
  std::size_t cpu_workers = 1;   ///< m
  std::size_t gpu_workers = 1;   ///< k
  AllocationPolicy policy = AllocationPolicy::kSwdual;
  align::ScoringScheme scheme;
  platform::PerfModel model;
  align::KernelKind cpu_kernel = align::KernelKind::kInterSeq;
  std::size_t top_hits = 10;     ///< hits reported per query

  /// SIMD backend for the CPU kernels. kAuto picks the widest the host
  /// supports (AVX-512BW > AVX2 > SSE2 > scalar); SWDUAL_FORCE_BACKEND
  /// still overrides. Scores are bit-identical on every backend.
  align::Backend cpu_backend = align::Backend::kAuto;

  /// Two-stage filter (align/search.h). With mode kHeuristic every worker
  /// screens its task's database pass with the banded kernel and rescans
  /// only top_hits-derived candidates exactly; CPU workers screen inline,
  /// GPU workers screen on the host and ship only candidates to the device.
  /// Screens and selection are deterministic, so filtered results are
  /// identical across worker types, backends, and schedules. kOff (the
  /// default) is bit-identical to the unfiltered search.
  align::FilterConfig filter;

  /// Per-hit annotation (align/annotate.h). When enabled, the master
  /// annotates each query's merged top-k AFTER the collect/merge phase —
  /// GPU-path and CPU-path task results alike — with e-value/bit score
  /// (and, stats+cigar, a validated traceback) computed against the full
  /// database view, so annotated hits are identical for every allocation
  /// policy, worker mix, and schedule. `stats` must then point to
  /// calibrated parameters (borrowed for the run): the master never
  /// calibrates itself — callers go through align::StatsCache so repeated
  /// runs share one deterministic calibration.
  align::AnnotateConfig annotate;
  const align::KarlinAltschulParams* stats = nullptr;

  /// Intra-task threads per CPU worker (> 1 scans the database in parallel
  /// chunks inside each task; scores are identical to the serial path).
  std::size_t threads_per_cpu_worker = 1;

  /// Optional shared query-profile cache, borrowed for the run and forwarded
  /// to every worker: repeated queries (and one query fanned out across
  /// batches/retries) reuse one resident SearchProfiles instead of
  /// rebuilding per task. The serve layer passes its cache here so profile
  /// reuse spans requests. Scores are bit-identical with or without it.
  align::ProfileCache* profile_cache = nullptr;

  /// Allocation rounds (Fig. 6: the master may allocate "only once at the
  /// beginning of the execution or iteratively until all tasks are
  /// executed"). 1 = the paper's one-round mode; r > 1 partitions the task
  /// list into r batches, each scheduled with the policy and dispatched only
  /// after the previous batch completed. Ignored for self-scheduling, which
  /// is already fully iterative.
  std::size_t rounds = 1;

  /// Fault injection for robustness testing (forwarded to the workers): a
  /// task for which this returns true is reported failed and reassigned by
  /// the master to another worker, up to max_task_retries times.
  std::function<bool(std::size_t task_id, std::size_t worker_id)>
      fault_injector;
  std::size_t max_task_retries = 3;

  /// Debug contract checks on every allocation round (check/bounds.h,
  /// check/trace_check.h): the round plan is validated structurally, the
  /// dual-approximation policies are checked against their certified
  /// 2.OPT bound, and a DES replay of the plan is cross-validated against
  /// it before dispatch. Failures throw swdual::Error. Off by default —
  /// the checks re-run the lower-bound search per round.
  bool validate_contracts = false;

  /// Optional observability sinks (obs/trace.h, obs/metrics.h), borrowed for
  /// the duration of run_search. When set, the master traces its
  /// schedule/collect/merge phases and retry decisions on obs::kMasterTrack,
  /// each worker traces task spans (wall + virtual clock) on its own track,
  /// and counters/histograms (`tasks_dispatched`, `task_retries`,
  /// `chunk_scan_seconds`, ...) accumulate in the registry.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

/// One query's merged result.
struct QueryResult {
  std::size_t query_index = 0;
  std::vector<align::SearchHit> hits;  ///< top_hits best database records
};

/// End-to-end report of one database search run.
struct SearchReport {
  std::vector<QueryResult> results;      ///< one per query, query order
  double wall_seconds = 0.0;             ///< real elapsed time on this host
  double virtual_makespan = 0.0;         ///< modeled time on paper hardware
  double virtual_gcups = 0.0;            ///< cells / virtual_makespan
  std::uint64_t total_cells = 0;
  sched::Schedule planned;               ///< static plan (empty if dynamic)
  std::map<std::size_t, double> worker_virtual_busy;  ///< worker id → busy
  double virtual_idle_fraction = 0.0;

  /// Aggregated filter counters (all zero when MasterConfig::filter is off).
  align::FilterStats filter;
};

/// Run a complete search: `queries` against `db` on cpu+gpu workers.
/// Implements the paper's one-round flow for static policies (the master
/// sends every worker its full task list after scheduling) and the pull
/// loop for self-scheduling.
SearchReport run_search(const std::vector<seq::Sequence>& queries,
                        const std::vector<seq::Sequence>& db,
                        const MasterConfig& config);

/// View-based core: the database is borrowed as residue views, so callers
/// holding an mmap-backed seq::MappedSwdb (or any other zero-copy source)
/// search without ever materializing records. The viewed bytes must stay
/// alive for the duration of the call. The record overload above delegates
/// here.
SearchReport run_search(const std::vector<seq::Sequence>& queries,
                        const align::DbView& db,
                        const MasterConfig& config);

/// Shard plumbing: run the search against only the database records listed
/// in `shard` (indices into `db`, each < db.size()). The scan sees a
/// sub-view — still zero-copy spans into the caller's storage — and every
/// reported hit is mapped back to its *global* database index before the
/// report is returned, so the output composes directly with results from
/// other shards (the serve layer's scatter-gather recovery path re-runs a
/// failed shard through the full master scheduler with this overload).
SearchReport run_search(const std::vector<seq::Sequence>& queries,
                        const align::DbView& db,
                        std::span<const std::uint32_t> shard,
                        const MasterConfig& config);

}  // namespace swdual::master
