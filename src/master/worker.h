// Worker threads (the "slaves" of the paper's master–slave model).
//
// Every worker owns a command queue of TaskOrders and pushes TaskReports to
// the master's shared result queue. A CPU worker runs the SWIPE-class
// inter-sequence kernel directly; a GPU worker drives a gpusim::VirtualGpu.
// Both compute exact scores on this host and additionally report modeled
// ("virtual") execution times for the paper's hardware classes.
#pragma once

#include <functional>
#include <memory>
#include <thread>

#include "align/parallel_search.h"
#include "align/profile_cache.h"
#include "align/search.h"
#include "gpusim/virtual_gpu.h"
#include "master/protocol.h"
#include "platform/perf_model.h"
#include "util/concurrent_queue.h"

namespace swdual::obs {
class MetricsRegistry;
class Tracer;
}  // namespace swdual::obs

namespace swdual::master {

/// Shared read-only context for all workers.
struct WorkerContext {
  const std::vector<seq::Sequence>* queries = nullptr;
  const align::DbView* db = nullptr;
  align::ScoringScheme scheme;
  platform::PerfModel model;
  align::KernelKind cpu_kernel = align::KernelKind::kInterSeq;

  /// SIMD backend for the CPU kernels (kAuto = widest available; see
  /// align/backend.h). Forwarded to every search call a CPU worker makes.
  align::Backend cpu_backend = align::Backend::kAuto;

  /// Two-stage filter plus the hit count its candidate selection targets
  /// (MasterConfig::filter / top_hits). Applies to both worker types; see
  /// MasterConfig::filter for the determinism argument.
  align::FilterConfig filter;
  std::size_t top_hits = 10;

  /// Intra-task threads for each CPU worker: > 1 makes the worker scan the
  /// database through a chunked ParallelSearchEngine instead of the serial
  /// search_database path (results are bit-identical either way).
  std::size_t threads_per_cpu_worker = 1;

  /// Optional shared query-profile cache (align/profile_cache.h). When set,
  /// workers acquire per-query profiles from it instead of rebuilding them
  /// per task, so repeated queries — the service layer's batches — reuse one
  /// resident profile context. Must be thread-safe (it is) and outlive the
  /// workers. Scores are bit-identical with or without it.
  align::ProfileCache* profile_cache = nullptr;

  /// Fault injection hook for robustness testing: called before a task
  /// executes; returning true makes the worker report failure instead of
  /// results (simulating a crashed kernel / lost slave). Must be
  /// thread-safe. nullptr = no faults.
  std::function<bool(std::size_t task_id, std::size_t worker_id)>
      fault_injector;

  /// Optional observability sinks (obs/trace.h, obs/metrics.h). When set,
  /// every executed task becomes a span on track obs::worker_track(id) with
  /// wall time plus the worker's accumulated virtual-time interval, faults
  /// become instant events, and per-task metrics are recorded.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

class Worker {
 public:
  /// Starts the worker thread immediately (registration step).
  Worker(std::size_t id, sched::PeId pe, const WorkerContext& context,
         ConcurrentQueue<TaskReport>& results);

  /// Joins the thread; assign() must not be called afterwards.
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Enqueue one task order. Returns false after shutdown() was called;
  /// the master must check (an unexecuted order would hang its collect
  /// loop waiting for the missing report).
  [[nodiscard]] bool assign(const TaskOrder& order) {
    return commands_.push(order);
  }

  /// Close the command queue; the thread drains outstanding orders and exits.
  void shutdown() { commands_.close(); }

  std::size_t id() const { return id_; }
  sched::PeId pe() const { return pe_; }

 private:
  void run();
  TaskReport execute(const TaskOrder& order);

  /// Two-stage GPU task: banded screen on the host, candidate-only batch on
  /// the virtual device, rank over candidates. Fills scores/cells/hits/
  /// filter/virtual_seconds of `report`.
  void execute_gpu_filtered(std::span<const std::uint8_t> query_view,
                            const align::DbView& db, TaskReport& report);

  std::size_t id_;
  sched::PeId pe_;
  const WorkerContext& context_;
  ConcurrentQueue<TaskReport>& results_;
  ConcurrentQueue<TaskOrder> commands_;
  std::unique_ptr<gpusim::VirtualGpu> gpu_;  ///< only for GPU workers
  /// Chunked multithreaded scan engine; only for CPU workers with
  /// threads_per_cpu_worker > 1.
  std::unique_ptr<align::ParallelSearchEngine> engine_;
  /// Virtual clock of this worker: tasks execute back to back in modeled
  /// time, so successive task spans tile [0, worker_virtual_busy) exactly.
  double virtual_clock_ = 0.0;
  std::thread thread_;
};

}  // namespace swdual::master
