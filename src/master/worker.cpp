#include "master/worker.h"

#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/timer.h"

namespace swdual::master {

Worker::Worker(std::size_t id, sched::PeId pe, const WorkerContext& context,
               ConcurrentQueue<TaskReport>& results)
    : id_(id), pe_(pe), context_(context), results_(results) {
  SWDUAL_REQUIRE(context.queries != nullptr && context.db != nullptr,
                 "worker context incomplete");
  if (pe_.type == sched::PeType::kGpu) {
    gpusim::DeviceSpec spec;
    spec.gcups = context_.model.gpu_worker().gcups;
    gpu_ = std::make_unique<gpusim::VirtualGpu>(spec);
  } else if (context_.threads_per_cpu_worker > 1) {
    align::ParallelSearchOptions options;
    options.threads = context_.threads_per_cpu_worker;
    options.tracer = context_.tracer;
    options.metrics = context_.metrics;
    options.trace_track = obs::worker_track(id_);
    engine_ =
        std::make_unique<align::ParallelSearchEngine>(*context_.db, options);
  }
  thread_ = std::thread([this] { run(); });
}

Worker::~Worker() {
  commands_.close();
  if (thread_.joinable()) thread_.join();
}

void Worker::run() {
  while (auto order = commands_.pop()) {
    // The master keeps the result queue open until every worker joined, so
    // a rejected push means a task report (and a waiting collect loop) would
    // be lost — that invariant breaking is unrecoverable here.
    SWDUAL_CHECK(results_.push(execute(*order)),
                 "result queue closed while worker " + std::to_string(id_) +
                     " was executing");
  }
}

TaskReport Worker::execute(const TaskOrder& order) {
  const seq::Sequence& query = (*context_.queries)[order.query_index];
  const align::DbView& db = *context_.db;
  const std::span<const std::uint8_t> query_view(query.residues.data(),
                                                 query.residues.size());
  TaskReport report;
  report.task_id = order.task_id;
  report.query_index = order.query_index;
  report.worker_id = id_;
  report.pe = pe_;

  if (context_.fault_injector &&
      context_.fault_injector(order.task_id, id_)) {
    if (context_.tracer) {
      context_.tracer->instant(
          "fault", "fault", obs::worker_track(id_),
          {{"task_id", static_cast<double>(order.task_id)},
           {"worker", static_cast<double>(id_)}});
    }
    if (context_.metrics) context_.metrics->add("task_faults");
    report.failed = true;
    return report;
  }

  obs::Span span;
  if (context_.tracer) {
    span = context_.tracer->span("task", "task", obs::worker_track(id_));
    span.arg("task_id", static_cast<double>(order.task_id));
    span.arg("query", static_cast<double>(order.query_index));
    span.arg("worker", static_cast<double>(id_));
  }

  WallTimer timer;
  if (pe_.type == sched::PeType::kGpu) {
    gpusim::BatchResult batch;
    if (context_.profile_cache) {
      const auto cached = context_.profile_cache->acquire(
          query_view, context_.scheme, align::KernelKind::kInterSeq);
      batch = gpu_->run_batch(cached->profiles(), db);
    } else {
      batch = gpu_->run_batch(query_view, db, context_.scheme);
    }
    report.scores = std::move(batch.scores);
    report.cells = batch.cells;
    report.virtual_seconds = batch.virtual_seconds;
  } else {
    align::SearchResult result;
    if (context_.profile_cache) {
      const auto cached = context_.profile_cache->acquire(
          query_view, context_.scheme, context_.cpu_kernel,
          context_.cpu_backend);
      result = engine_ ? engine_->search(cached->profiles())
                       : align::search_database(cached->profiles(), db);
    } else {
      result =
          engine_ ? engine_->search(query_view, context_.scheme,
                                    context_.cpu_kernel, context_.cpu_backend)
                  : align::search_database(query_view, db, context_.scheme,
                                           context_.cpu_kernel,
                                           context_.cpu_backend);
    }
    report.scores = std::move(result.scores);
    report.cells = result.cells;
    report.virtual_seconds =
        context_.model.cpu_worker().seconds_for(result.cells);
  }
  report.wall_seconds = timer.seconds();
  // Successful tasks tile the worker's virtual timeline back to back, so
  // per-track span sums reproduce SearchReport::worker_virtual_busy.
  span.arg("cells", static_cast<double>(report.cells));
  span.virtual_interval(virtual_clock_,
                        virtual_clock_ + report.virtual_seconds);
  virtual_clock_ += report.virtual_seconds;
  if (context_.metrics) {
    context_.metrics->observe("task_virtual_seconds", report.virtual_seconds);
  }
  return report;
}

}  // namespace swdual::master
