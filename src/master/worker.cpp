#include "master/worker.h"

#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/timer.h"

namespace swdual::master {

Worker::Worker(std::size_t id, sched::PeId pe, const WorkerContext& context,
               ConcurrentQueue<TaskReport>& results)
    : id_(id), pe_(pe), context_(context), results_(results) {
  SWDUAL_REQUIRE(context.queries != nullptr && context.db != nullptr,
                 "worker context incomplete");
  if (pe_.type == sched::PeType::kGpu) {
    gpusim::DeviceSpec spec;
    spec.gcups = context_.model.gpu_worker().gcups;
    gpu_ = std::make_unique<gpusim::VirtualGpu>(spec);
  } else if (context_.threads_per_cpu_worker > 1) {
    align::ParallelSearchOptions options;
    options.threads = context_.threads_per_cpu_worker;
    options.tracer = context_.tracer;
    options.metrics = context_.metrics;
    options.trace_track = obs::worker_track(id_);
    engine_ =
        std::make_unique<align::ParallelSearchEngine>(*context_.db, options);
  }
  thread_ = std::thread([this] { run(); });
}

Worker::~Worker() {
  commands_.close();
  if (thread_.joinable()) thread_.join();
}

void Worker::run() {
  while (auto order = commands_.pop()) {
    // The master keeps the result queue open until every worker joined, so
    // a rejected push means a task report (and a waiting collect loop) would
    // be lost — that invariant breaking is unrecoverable here.
    SWDUAL_CHECK(results_.push(execute(*order)),
                 "result queue closed while worker " + std::to_string(id_) +
                     " was executing");
  }
}

void Worker::execute_gpu_filtered(std::span<const std::uint8_t> query_view,
                                  const align::DbView& db,
                                  TaskReport& report) {
  // Host-side stage 1: the banded screen is a CPU kernel (CUDASW++-class
  // tools run exactly this kind of host prefilter before shipping work).
  // Screens and candidate selection are deterministic, so a GPU-executed
  // filtered task reports the same scores and hits as a CPU-executed one.
  std::shared_ptr<const align::CachedProfiles> cached;
  std::unique_ptr<align::SearchProfiles> local;
  const align::SearchProfiles* profiles;
  if (context_.profile_cache) {
    cached = context_.profile_cache->acquire(query_view, context_.scheme,
                                             align::KernelKind::kInterSeq);
    profiles = &cached->profiles();
  } else {
    local = std::make_unique<align::SearchProfiles>(
        query_view, context_.scheme, align::KernelKind::kInterSeq);
    profiles = local.get();
  }
  const align::ScreenResult screen =
      align::screen_range(*profiles, db, 0, db.size(), context_.filter.band);
  const std::vector<std::uint32_t> candidates = align::filter_select_candidates(
      screen, context_.top_hits, context_.filter, &report.filter);

  align::DbView rescan;
  std::vector<std::uint32_t> rescan_index;
  for (const std::uint32_t c : candidates) {
    if (!screen.exact[c]) {
      rescan.push_back(db[c]);
      rescan_index.push_back(c);
    }
  }
  const gpusim::BatchResult batch =
      cached ? gpu_->run_batch(cached->profiles(), rescan)
             : gpu_->run_batch(query_view, rescan, context_.scheme);
  report.scores = screen.scores;
  for (std::size_t i = 0; i < rescan_index.size(); ++i) {
    report.scores[rescan_index[i]] = batch.scores[i];
  }
  report.filter.rescans += rescan_index.size();
  report.cells = screen.cells + batch.cells;
  report.ranked = true;
  for (const std::uint32_t c : candidates) {
    align::push_top_hit(report.hits, {c, report.scores[c]},
                        context_.top_hits);
  }
  align::finish_top_hits(report.hits);
  // The screen runs on the host CPU, the candidate batch on the device:
  // charge each to its hardware model.
  report.virtual_seconds =
      context_.model.cpu_worker().seconds_for(screen.cells) +
      batch.virtual_seconds;
}

TaskReport Worker::execute(const TaskOrder& order) {
  const seq::Sequence& query = (*context_.queries)[order.query_index];
  const align::DbView& db = *context_.db;
  const std::span<const std::uint8_t> query_view(query.residues.data(),
                                                 query.residues.size());
  TaskReport report;
  report.task_id = order.task_id;
  report.query_index = order.query_index;
  report.worker_id = id_;
  report.pe = pe_;

  if (context_.fault_injector &&
      context_.fault_injector(order.task_id, id_)) {
    if (context_.tracer) {
      context_.tracer->instant(
          "fault", "fault", obs::worker_track(id_),
          {{"task_id", static_cast<double>(order.task_id)},
           {"worker", static_cast<double>(id_)}});
    }
    if (context_.metrics) context_.metrics->add("task_faults");
    report.failed = true;
    return report;
  }

  obs::Span span;
  if (context_.tracer) {
    span = context_.tracer->span("task", "task", obs::worker_track(id_));
    span.arg("task_id", static_cast<double>(order.task_id));
    span.arg("query", static_cast<double>(order.query_index));
    span.arg("worker", static_cast<double>(id_));
  }

  WallTimer timer;
  if (pe_.type == sched::PeType::kGpu) {
    if (context_.filter.enabled()) {
      execute_gpu_filtered(query_view, db, report);
    } else {
      gpusim::BatchResult batch;
      if (context_.profile_cache) {
        const auto cached = context_.profile_cache->acquire(
            query_view, context_.scheme, align::KernelKind::kInterSeq);
        batch = gpu_->run_batch(cached->profiles(), db);
      } else {
        batch = gpu_->run_batch(query_view, db, context_.scheme);
      }
      report.scores = std::move(batch.scores);
      report.cells = batch.cells;
      report.virtual_seconds = batch.virtual_seconds;
    }
  } else if (context_.filter.enabled()) {
    align::FilteredSearchResult filtered;
    if (context_.profile_cache) {
      const auto cached = context_.profile_cache->acquire(
          query_view, context_.scheme, context_.cpu_kernel,
          context_.cpu_backend);
      filtered = engine_ ? engine_->search_filtered(cached->profiles(),
                                                    context_.top_hits,
                                                    context_.filter)
                         : align::search_database_filtered(
                               cached->profiles(), db, context_.top_hits,
                               context_.filter);
    } else {
      filtered = engine_ ? engine_->search_filtered(
                               query_view, context_.scheme,
                               context_.cpu_kernel, context_.top_hits,
                               context_.filter, context_.cpu_backend)
                         : align::search_database_filtered(
                               query_view, db, context_.scheme,
                               context_.cpu_kernel, context_.top_hits,
                               context_.filter, context_.cpu_backend);
    }
    report.scores = std::move(filtered.result.scores);
    report.cells = filtered.result.cells;
    report.ranked = true;
    report.hits = std::move(filtered.hits);
    report.filter = filtered.stats;
    report.virtual_seconds =
        context_.model.cpu_worker().seconds_for(report.cells);
  } else {
    align::SearchResult result;
    if (context_.profile_cache) {
      const auto cached = context_.profile_cache->acquire(
          query_view, context_.scheme, context_.cpu_kernel,
          context_.cpu_backend);
      result = engine_ ? engine_->search(cached->profiles())
                       : align::search_database(cached->profiles(), db);
    } else {
      result =
          engine_ ? engine_->search(query_view, context_.scheme,
                                    context_.cpu_kernel, context_.cpu_backend)
                  : align::search_database(query_view, db, context_.scheme,
                                           context_.cpu_kernel,
                                           context_.cpu_backend);
    }
    report.scores = std::move(result.scores);
    report.cells = result.cells;
    report.virtual_seconds =
        context_.model.cpu_worker().seconds_for(result.cells);
  }
  report.wall_seconds = timer.seconds();
  // (The chunked engine emits these itself when it ran the filtered scan.)
  if (context_.filter.enabled() && context_.metrics && !engine_) {
    context_.metrics->add("filter_candidates",
                          static_cast<double>(report.filter.candidates));
    context_.metrics->add("filter_rescans",
                          static_cast<double>(report.filter.rescans));
    context_.metrics->add("filter_band_uncertain",
                          static_cast<double>(report.filter.band_uncertain));
  }
  // Successful tasks tile the worker's virtual timeline back to back, so
  // per-track span sums reproduce SearchReport::worker_virtual_busy.
  span.arg("cells", static_cast<double>(report.cells));
  span.virtual_interval(virtual_clock_,
                        virtual_clock_ + report.virtual_seconds);
  virtual_clock_ += report.virtual_seconds;
  if (context_.metrics) {
    context_.metrics->observe("task_virtual_seconds", report.virtual_seconds);
  }
  return report;
}

}  // namespace swdual::master
