#include "master/master.h"

#include <algorithm>
#include <cstddef>
#include <memory>

#include "check/bounds.h"
#include "check/trace_check.h"
#include "master/worker.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "platform/des.h"
#include "sched/baselines.h"
#include "sched/dual_approx.h"
#include "util/error.h"
#include "util/timer.h"

namespace swdual::master {

const char* policy_name(AllocationPolicy policy) {
  switch (policy) {
    case AllocationPolicy::kSwdual: return "swdual";
    case AllocationPolicy::kSwdualRefined: return "swdual-refined";
    case AllocationPolicy::kSelfScheduling: return "self-scheduling";
    case AllocationPolicy::kEqualPower: return "equal-power";
    case AllocationPolicy::kProportional: return "proportional";
    case AllocationPolicy::kLpt: return "lpt";
  }
  return "unknown";
}

namespace {

/// Map a schedule PE to the worker id convention: GPUs register first
/// (ids 0..k-1), CPUs after (ids k..k+m-1), as in the paper's experiments.
std::size_t worker_for(const sched::PeId& pe, std::size_t gpu_workers) {
  return pe.type == sched::PeType::kGpu ? pe.index : gpu_workers + pe.index;
}

}  // namespace

SearchReport run_search(const std::vector<seq::Sequence>& queries,
                        const std::vector<seq::Sequence>& db,
                        const MasterConfig& config) {
  // The engine only ever needs residue views; materialized records just
  // borrow through them (Fig. 6 "acquire sequences").
  return run_search(queries, align::make_db_view(db), config);
}

SearchReport run_search(const std::vector<seq::Sequence>& queries,
                        const align::DbView& db_view,
                        std::span<const std::uint32_t> shard,
                        const MasterConfig& config) {
  align::DbView shard_view;
  shard_view.reserve(shard.size());
  for (const std::uint32_t record : shard) {
    SWDUAL_REQUIRE(record < db_view.size(),
                   "shard record index out of range");
    shard_view.push_back(db_view[record]);
  }
  // Annotation is disabled for the sub-view run unconditionally: a shard
  // report exists to be merged with other shards, and per-shard annotation
  // would use the shard's residue count as the Karlin–Altschul search
  // space (wrong e-values) before the winners are even known. The caller
  // annotates the merged global top-k instead.
  MasterConfig shard_config = config;
  shard_config.annotate = {};
  shard_config.stats = nullptr;
  SearchReport report = run_search(queries, shard_view, shard_config);
  // Hits come back indexed into the sub-view; lift them to global database
  // indices so shard reports merge with the rest of the scatter.
  for (QueryResult& result : report.results) {
    for (align::SearchHit& hit : result.hits) {
      hit.db_index = shard[hit.db_index];
    }
  }
  return report;
}

SearchReport run_search(const std::vector<seq::Sequence>& queries,
                        const align::DbView& db_view,
                        const MasterConfig& config) {
  SWDUAL_REQUIRE(config.cpu_workers + config.gpu_workers > 0,
                 "need at least one worker");
  if (config.annotate.enabled()) {
    config.annotate.validate();
    SWDUAL_REQUIRE(config.stats != nullptr,
                   "annotation requires calibrated Karlin-Altschul params "
                   "(acquire them via align::StatsCache)");
  }
  SearchReport report;
  if (queries.empty()) return report;

  WallTimer wall;

  std::uint64_t db_residues = 0;
  for (const auto& view : db_view) db_residues += view.size();

  std::vector<sched::Task> tasks;
  tasks.reserve(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const std::uint64_t cells =
        static_cast<std::uint64_t>(queries[q].length()) * db_residues;
    tasks.push_back(config.model.make_task(q, cells));
  }

  const sched::HybridPlatform platform{config.cpu_workers,
                                       config.gpu_workers};

  // --- Allocate tasks (Fig. 6, "Allocation policies"). ---
  const bool dynamic = config.policy == AllocationPolicy::kSelfScheduling;
  const auto plan_batch =
      [&config, &platform](const std::vector<sched::Task>& batch) {
        sched::DualSearchStats stats;
        const auto note_lambda = [&config, &stats] {
          if (config.metrics) {
            config.metrics->observe("lambda_iterations",
                                    static_cast<double>(stats.iterations));
          }
        };
        switch (config.policy) {
          case AllocationPolicy::kSwdual: {
            sched::Schedule s = sched::swdual_schedule(
                batch, platform, 1e-3, &stats, config.tracer);
            note_lambda();
            return s;
          }
          case AllocationPolicy::kSwdualRefined: {
            sched::Schedule s = sched::swdual_schedule_refined(
                batch, platform, 1e-3, &stats, config.tracer);
            note_lambda();
            return s;
          }
          case AllocationPolicy::kEqualPower:
            return sched::equal_power(batch, platform);
          case AllocationPolicy::kProportional:
            return sched::proportional_static(batch, platform);
          case AllocationPolicy::kLpt:
            return sched::lpt_hybrid(batch, platform);
          case AllocationPolicy::kSelfScheduling:
            break;  // decided at run time, one task per pull
        }
        return sched::Schedule{};
      };

  // --- Register slaves, dispatch, execute. ---
  WorkerContext context;
  context.queries = &queries;
  context.db = &db_view;
  context.scheme = config.scheme;
  context.model = config.model;
  context.cpu_kernel = config.cpu_kernel;
  // Resolve the SIMD backend once, here on the caller's thread: a bad
  // --backend or SWDUAL_FORCE_BACKEND surfaces as a clean configuration
  // error instead of an exception escaping a worker thread, and every
  // worker is pinned to the same backend for the whole run.
  context.cpu_backend =
      align::resolve_backend(config.cpu_backend, config.cpu_kernel);
  config.filter.validate();
  context.filter = config.filter;
  context.top_hits = config.top_hits;
  context.threads_per_cpu_worker = config.threads_per_cpu_worker;
  context.profile_cache = config.profile_cache;
  context.fault_injector = config.fault_injector;
  context.tracer = config.tracer;
  context.metrics = config.metrics;

  ConcurrentQueue<TaskReport> results;
  std::vector<std::unique_ptr<Worker>> workers;
  for (std::size_t g = 0; g < config.gpu_workers; ++g) {
    workers.push_back(std::make_unique<Worker>(
        workers.size(), sched::PeId{sched::PeType::kGpu, g}, context,
        results));
  }
  for (std::size_t c = 0; c < config.cpu_workers; ++c) {
    workers.push_back(std::make_unique<Worker>(
        workers.size(), sched::PeId{sched::PeType::kCpu, c}, context,
        results));
  }

  sched::Schedule plan;  // union of all rounds' plans, for the report
  std::vector<TaskReport> collected;
  collected.reserve(tasks.size());

  const auto note_dispatch = [&config](std::size_t worker_id,
                                       std::size_t task_id) {
    if (config.metrics) config.metrics->add("tasks_dispatched");
    if (config.tracer) {
      config.tracer->instant("dispatch", "master", obs::kMasterTrack,
                             {{"task_id", static_cast<double>(task_id)},
                              {"worker", static_cast<double>(worker_id)}});
    }
  };

  // Failure handling: a failed report is reassigned to the next worker in
  // registration order (a different one than the failing worker whenever the
  // platform has more than one), bounded by max_task_retries per task.
  std::map<std::size_t, std::size_t> retries;
  const auto handle_failure = [&](const TaskReport& r) {
    const std::size_t attempt = ++retries[r.task_id];
    SWDUAL_CHECK(attempt <= config.max_task_retries,
                 "task " + std::to_string(r.task_id) + " failed " +
                     std::to_string(attempt) + " times — giving up");
    const std::size_t target = (r.worker_id + 1) % workers.size();
    if (config.metrics) config.metrics->add("task_retries");
    if (config.tracer) {
      config.tracer->instant("retry", "retry", obs::kMasterTrack,
                             {{"task_id", static_cast<double>(r.task_id)},
                              {"attempt", static_cast<double>(attempt)},
                              {"failed_worker",
                               static_cast<double>(r.worker_id)},
                              {"target_worker", static_cast<double>(target)}});
    }
    note_dispatch(target, r.task_id);
    SWDUAL_CHECK(workers[target]->assign({r.task_id, r.query_index}),
                 "no worker available for failed-task reassignment");
  };

  if (dynamic) {
    // Fully iterative: prime every worker with one task; refill on
    // completion. Worker shutdown is handled by the destructors once every
    // result has arrived.
    std::size_t next_task = 0;
    for (auto& worker : workers) {
      if (next_task >= tasks.size()) break;
      note_dispatch(worker->id(), next_task);
      SWDUAL_CHECK(worker->assign({next_task, next_task}),
                   "worker rejected initial task assignment");
      ++next_task;
    }
    obs::Span collect_span;
    if (config.tracer) {
      collect_span =
          config.tracer->span("collect", "master", obs::kMasterTrack);
      collect_span.arg("tasks", static_cast<double>(tasks.size()));
    }
    while (collected.size() < tasks.size()) {
      auto r = results.pop();
      SWDUAL_CHECK(r.has_value(), "result stream ended early");
      if (next_task < tasks.size()) {
        note_dispatch(r->worker_id, next_task);
        SWDUAL_CHECK(workers[r->worker_id]->assign({next_task, next_task}),
                     "worker rejected self-scheduled task");
        ++next_task;
      }
      if (r->failed) {
        handle_failure(*r);
      } else {
        collected.push_back(std::move(*r));
      }
    }
  } else {
    // Static dispatch in one or more rounds: schedule a batch, send each
    // worker its list in planned start order, collect, repeat.
    const std::size_t rounds =
        std::clamp<std::size_t>(config.rounds, 1, tasks.size());
    const std::size_t batch_size = (tasks.size() + rounds - 1) / rounds;
    for (std::size_t begin = 0; begin < tasks.size(); begin += batch_size) {
      const std::size_t end = std::min(begin + batch_size, tasks.size());
      const std::vector<sched::Task> batch(
          tasks.begin() + static_cast<std::ptrdiff_t>(begin),
          tasks.begin() + static_cast<std::ptrdiff_t>(end));
      const double round_index =
          static_cast<double>(begin / batch_size);
      obs::Span schedule_span;
      if (config.tracer) {
        schedule_span =
            config.tracer->span("schedule", "master", obs::kMasterTrack);
        schedule_span.arg("round", round_index);
        schedule_span.arg("tasks", static_cast<double>(batch.size()));
      }
      sched::Schedule round_plan = plan_batch(batch);
      schedule_span.finish();
      if (config.validate_contracts) {
        // Contract layer (debug flag): the plan must be structurally sound,
        // the dual-approximation policies must honor their certified bound,
        // and the DES must replay the plan exactly.
        sched::validate_schedule(round_plan, batch, platform);
        if (config.policy == AllocationPolicy::kSwdual ||
            config.policy == AllocationPolicy::kSwdualRefined) {
          check::check_approximation_bound(round_plan, batch, platform,
                                           check::kDualApproxFactor);
        }
        check::cross_validate_trace(
            platform::simulate_static(round_plan, batch, platform),
            round_plan, batch, platform);
      }
      std::vector<sched::Assignment> ordered(round_plan.assignments());
      std::sort(ordered.begin(), ordered.end(),
                [](const sched::Assignment& a, const sched::Assignment& b) {
                  return a.start < b.start;
                });
      for (const sched::Assignment& a : ordered) {
        const std::size_t worker = worker_for(a.pe, config.gpu_workers);
        note_dispatch(worker, a.task_id);
        SWDUAL_CHECK(workers[worker]->assign({a.task_id, a.task_id}),
                     "worker rejected planned task assignment");
        plan.add(a);
      }
      obs::Span collect_span;
      if (config.tracer) {
        collect_span =
            config.tracer->span("collect", "master", obs::kMasterTrack);
        collect_span.arg("round", round_index);
      }
      const std::size_t target = collected.size() + batch.size();
      while (collected.size() < target) {
        auto r = results.pop();
        SWDUAL_CHECK(r.has_value(), "result stream ended early");
        if (r->failed) {
          handle_failure(*r);
        } else {
          collected.push_back(std::move(*r));
        }
      }
    }
    for (auto& worker : workers) worker->shutdown();
  }
  workers.clear();  // joins all threads

  obs::Span merge_span;
  if (config.tracer) {
    merge_span = config.tracer->span("merge", "master", obs::kMasterTrack);
    merge_span.arg("reports", static_cast<double>(collected.size()));
  }
  report.results.resize(queries.size());
  for (TaskReport& r : collected) {
    report.total_cells += r.cells;
    report.worker_virtual_busy[r.worker_id] += r.virtual_seconds;
    QueryResult& query_result = report.results[r.query_index];
    query_result.query_index = r.query_index;
    if (r.ranked) {
      // Filtered tasks already ranked over their candidate set; a top()
      // over the mixed screened/exact score vector could not re-derive it.
      query_result.hits = std::move(r.hits);
      report.filter.merge(r.filter);
    } else {
      align::SearchResult scores;
      scores.scores = r.scores;
      query_result.hits = scores.top(config.top_hits);
    }
  }
  merge_span.finish();

  // Annotation runs once, after the merge, on each query's global top-k:
  // GPU-path and CPU-path results are annotated identically, and the
  // Karlin–Altschul search space is the whole database's residue count.
  if (config.annotate.enabled()) {
    for (QueryResult& query_result : report.results) {
      const auto& query = queries[query_result.query_index];
      align::annotate_hits(query_result.hits,
                           {query.residues.data(), query.residues.size()},
                           db_view, config.scheme, config.annotate,
                           *config.stats, db_residues, config.tracer,
                           config.metrics, obs::kMasterTrack);
    }
  }

  double busy_sum = 0.0;
  for (const auto& [worker_id, busy] : report.worker_virtual_busy) {
    report.virtual_makespan = std::max(report.virtual_makespan, busy);
    busy_sum += busy;
  }
  const double capacity =
      report.virtual_makespan * static_cast<double>(platform.total());
  report.virtual_idle_fraction =
      capacity > 0 ? (capacity - busy_sum) / capacity : 0.0;
  report.virtual_gcups =
      report.virtual_makespan > 0
          ? static_cast<double>(report.total_cells) /
                report.virtual_makespan / 1e9
          : 0.0;
  report.planned = std::move(plan);
  report.wall_seconds = wall.seconds();
  return report;
}

}  // namespace swdual::master
