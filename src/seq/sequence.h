// Encoded biological sequence value type.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "seq/alphabet.h"

namespace swdual::seq {

/// One biological sequence: identifier, free-form description, and residues
/// stored as alphabet codes (one byte each).
struct Sequence {
  std::string id;
  std::string description;
  AlphabetKind alphabet = AlphabetKind::kProtein;
  std::vector<std::uint8_t> residues;

  Sequence() = default;
  Sequence(std::string id_, std::string desc, AlphabetKind kind,
           std::vector<std::uint8_t> codes)
      : id(std::move(id_)),
        description(std::move(desc)),
        alphabet(kind),
        residues(std::move(codes)) {}

  /// Construct by encoding a residue string.
  static Sequence from_text(std::string id, std::string desc,
                            AlphabetKind kind, std::string_view text) {
    return Sequence(std::move(id), std::move(desc), kind,
                    Alphabet::get(kind).encode(text));
  }

  std::size_t length() const { return residues.size(); }
  bool empty() const { return residues.empty(); }

  /// Decode back to a residue string.
  std::string to_text() const {
    return Alphabet::get(alphabet).decode(residues);
  }

  bool operator==(const Sequence& other) const {
    return id == other.id && description == other.description &&
           alphabet == other.alphabet && residues == other.residues;
  }
};

}  // namespace swdual::seq
