#include "seq/queryset.h"

#include <algorithm>

#include "seq/dbgen.h"
#include "util/error.h"

namespace swdual::seq {

std::vector<Sequence> sample_query_set(const std::vector<Sequence>& database,
                                       std::size_t count, std::size_t min_len,
                                       std::size_t max_len,
                                       std::uint64_t seed) {
  SWDUAL_REQUIRE(count > 0, "query set must be non-empty");
  SWDUAL_REQUIRE(min_len >= 1 && min_len <= max_len,
                 "query length bounds invalid");
  Rng rng(seed);

  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < database.size(); ++i) {
    const std::size_t len = database[i].length();
    if (len >= min_len && len <= max_len) candidates.push_back(i);
  }

  std::vector<Sequence> queries;
  queries.reserve(count);

  // Anchor the extremes: one query at each length bound, synthesized if the
  // database has no record at that exact length. This matches the paper's
  // reporting of exact min/max query lengths per set.
  queries.push_back(random_protein(rng, "query_min", min_len));
  if (count > 1) queries.push_back(random_protein(rng, "query_max", max_len));

  while (queries.size() < count) {
    if (!candidates.empty()) {
      const std::size_t pick = candidates[rng.below(candidates.size())];
      Sequence q = database[pick];
      q.id = "query_" + std::to_string(queries.size()) + "_" + q.id;
      queries.push_back(std::move(q));
    } else {
      const auto len = static_cast<std::size_t>(
          rng.between(static_cast<std::int64_t>(min_len),
                      static_cast<std::int64_t>(max_len)));
      queries.push_back(random_protein(
          rng, "query_" + std::to_string(queries.size()), len));
    }
  }
  return queries;
}

std::vector<Sequence> make_query_set(QuerySetKind kind,
                                     const std::vector<Sequence>& uniprot,
                                     std::uint64_t seed) {
  switch (kind) {
    case QuerySetKind::kPaper:
      return sample_query_set(uniprot, kPaperQueryCount, 100, 5000, seed);
    case QuerySetKind::kHomogeneous:
      return sample_query_set(uniprot, kPaperQueryCount, 4500, 5000, seed);
    case QuerySetKind::kHeterogeneous:
      return sample_query_set(uniprot, kPaperQueryCount, 4, 35213, seed);
  }
  throw InvalidArgument("unknown query set kind");
}

}  // namespace swdual::seq
