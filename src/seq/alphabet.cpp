#include "seq/alphabet.h"

#include "util/error.h"

namespace swdual::seq {

Alphabet::Alphabet(AlphabetKind kind, std::string letters,
                   std::uint8_t wildcard)
    : kind_(kind), letters_(std::move(letters)), wildcard_(wildcard) {
  SWDUAL_CHECK(wildcard_ < letters_.size(), "wildcard code out of range");
  encode_table_.fill(wildcard_);
  for (std::size_t code = 0; code < letters_.size(); ++code) {
    const char upper = letters_[code];
    encode_table_[static_cast<unsigned char>(upper)] =
        static_cast<std::uint8_t>(code);
    if (upper >= 'A' && upper <= 'Z') {
      encode_table_[static_cast<unsigned char>(upper - 'A' + 'a')] =
          static_cast<std::uint8_t>(code);
    }
  }
}

const Alphabet& Alphabet::dna() {
  static const Alphabet alphabet(AlphabetKind::kDna, "ACGTN", 4);
  return alphabet;
}

const Alphabet& Alphabet::rna() {
  static const Alphabet alphabet(AlphabetKind::kRna, "ACGUN", 4);
  return alphabet;
}

const Alphabet& Alphabet::protein() {
  // BLOSUM matrix row order; code 22 ('X') is the wildcard.
  static const Alphabet alphabet(AlphabetKind::kProtein,
                                 "ARNDCQEGHILKMFPSTWYVBZX*", 22);
  return alphabet;
}

const Alphabet& Alphabet::get(AlphabetKind kind) {
  switch (kind) {
    case AlphabetKind::kDna: return dna();
    case AlphabetKind::kRna: return rna();
    case AlphabetKind::kProtein: return protein();
  }
  throw InvalidArgument("unknown alphabet kind");
}

std::vector<std::uint8_t> Alphabet::encode(std::string_view text) const {
  std::vector<std::uint8_t> codes;
  codes.reserve(text.size());
  for (char c : text) codes.push_back(encode(c));
  return codes;
}

std::string Alphabet::decode(const std::vector<std::uint8_t>& codes) const {
  std::string text;
  text.reserve(codes.size());
  for (std::uint8_t code : codes) text.push_back(decode(code));
  return text;
}

bool Alphabet::contains(char letter) const {
  const std::uint8_t code = encode(letter);
  if (code == wildcard_) {
    // The wildcard letter itself is a member; everything else mapped to the
    // wildcard is not.
    return letter == letters_[wildcard_] ||
           (letter >= 'a' && letter <= 'z' &&
            static_cast<char>(letter - 'a' + 'A') == letters_[wildcard_]);
  }
  return true;
}

}  // namespace swdual::seq
