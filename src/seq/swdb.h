// SWDB: the binary random-access sequence database format from §IV of the
// paper.
//
// FASTA files are sequential text, so reading "the i-th sequence" requires
// scanning from the start. The paper introduces a simple binary format with
// a few extra fields so both the master and the workers can read sequences
// at any position directly and pre-size memory allocations (all lengths are
// known up front). This is our realization of that format:
//
//   [header]   magic "SWDB", version, alphabet, record count, index offset
//              (v2 adds the pre-encoded section offset)
//   [records]  residue codes + id + description per record, back to back
//   [index]    per record: data offset, residue/id/description lengths
//   [v2]       pre-encoded section (version >= 2 only), see below
//
// Version 2 appends a *pre-encoded, pre-blocked* copy of the residue data
// so the hot search loop never touches (or re-copies) raw record bytes:
//
//   [v2 header]   magic "SWV2", block granularity, data offset/size
//   [v2 entries]  per record: blocked data offset + padded length
//   [lane order]  record ids sorted longest-first (ties by id) — the
//                 SWIPE-style lane-batch index: consecutive runs of this
//                 permutation form SIMD batches whose lanes retire together
//   [v2 data]     residues per record at a 64-byte-aligned offset, padded
//                 with the alphabet's wildcard code to a block multiple
//
// Two readers serve the format. SwdbReader loads the index (tens of bytes
// per record) and leaves the data on disk, serving O(1) random reads via
// seek. MappedSwdb maps the whole file read-only and hands out zero-copy
// spans into the mapping — one mapping shared by every engine/shard/thread
// (the kernel page cache holds a single physical copy). v1 files open in
// both readers; they simply lack the pre-encoded section, so MappedSwdb
// falls back to (equally zero-copy, but unaligned) spans into the record
// section and computes the lane order at open. All integers little-endian.
#pragma once

#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "seq/sequence.h"

namespace swdual::seq {

/// SWDB container versions this library reads and writes.
inline constexpr std::uint32_t kSwdbVersion1 = 1;
inline constexpr std::uint32_t kSwdbVersion2 = 2;
inline constexpr std::uint32_t kSwdbVersionLatest = kSwdbVersion2;

/// Alignment/padding granularity of the v2 pre-encoded section, in bytes:
/// every record's blocked residues start on a 64-byte (cache-line, widest
/// SIMD register) boundary and are padded to a multiple of it.
inline constexpr std::size_t kSwdbV2Block = 64;

/// Write all records to an SWDB file of the given container version.
/// Throws IoError on failure and InvalidArgument if records disagree on
/// alphabet or the version is unknown. Version 2 files contain everything a
/// v1 file does plus the pre-encoded section, so v1-only consumers of the
/// record/index sections keep working off the same bytes.
void write_swdb(const std::string& path, const std::vector<Sequence>& records,
                AlphabetKind alphabet,
                std::uint32_t version = kSwdbVersionLatest);

/// Convert a FASTA file to SWDB (the master/worker "convert format" step in
/// the paper's Fig. 6 workflow). Returns the number of records written.
std::size_t convert_fasta_to_swdb(const std::string& fasta_path,
                                  const std::string& swdb_path,
                                  AlphabetKind alphabet,
                                  std::uint32_t version = kSwdbVersionLatest);

/// Random-access streaming SWDB reader (v1 and v2 files).
class SwdbReader {
 public:
  /// Opens the file and loads the index; throws IoError if the file is
  /// missing, truncated, or not an SWDB container (a corrupt v2 section is
  /// rejected the same way — never silently ignored).
  explicit SwdbReader(const std::string& path);

  std::size_t size() const { return entries_.size(); }
  AlphabetKind alphabet() const { return alphabet_; }

  /// Container version of the file on disk (1 or 2).
  std::uint32_t version() const { return version_; }

  /// True if the file carries the v2 pre-encoded section.
  bool pre_encoded() const { return version_ >= kSwdbVersion2; }

  /// Residue count of record i without touching the data section — the
  /// property that makes task-cost estimation cheap for the scheduler.
  std::size_t length(std::size_t i) const;

  /// Sum of all residue counts (cell-count denominators for GCUPS).
  std::uint64_t total_residues() const { return total_residues_; }

  /// All residue counts in record order, straight from the index section —
  /// no record decoding (dbstats and the scheduler build on this).
  std::span<const std::uint32_t> lengths() const { return lengths_; }

  /// The lane-batch index: record ids sorted longest-first (ties by id).
  /// Read from the v2 section, or computed at open for v1 files.
  std::span<const std::uint32_t> lane_order() const { return lane_order_; }

  /// Read one record (seek + read; O(1) in the file position).
  Sequence read(std::size_t i) const;

  /// Read every record in file order.
  std::vector<Sequence> read_all() const;

 private:
  struct Entry {
    std::uint64_t offset = 0;
    std::uint32_t seq_length = 0;
    std::uint16_t id_length = 0;
    std::uint16_t desc_length = 0;
  };

  std::string path_;
  mutable std::ifstream file_;
  AlphabetKind alphabet_ = AlphabetKind::kProtein;
  std::uint32_t version_ = kSwdbVersion1;
  std::vector<Entry> entries_;
  std::vector<std::uint32_t> lengths_;
  std::vector<std::uint32_t> lane_order_;
  std::uint64_t total_residues_ = 0;
  std::uint64_t data_end_ = 0;  ///< first byte of the index section
};

/// mmap-backed zero-copy SWDB reader.
///
/// Maps the whole file read-only once; residues(), id() and description()
/// return views *into the mapping* — no per-record allocation, no decode,
/// and one physical copy of the database no matter how many engines,
/// shards or threads read it concurrently (the OS page cache backs every
/// mapping of the same file with the same pages).
///
/// Lifetime rules: every span/string_view handed out is invalidated when
/// the MappedSwdb is destroyed. Hold the database in a
/// std::shared_ptr<const MappedSwdb> that outlives all engines built over
/// it (ParallelSearchEngine, serve::QueryService and master::run_search
/// only borrow the views). The object is immutable after construction, so
/// concurrent reads need no synchronization.
///
/// On v2 files residues(i) points into the pre-encoded section: 64-byte
/// aligned, padded to a block multiple, ready for SIMD consumption. On v1
/// files it points into the record section (same bytes, no alignment
/// guarantee) — the compatibility fallback that keeps old databases
/// searchable bit-identically.
class MappedSwdb {
 public:
  /// Maps and validates the file; throws IoError on any structural problem
  /// (missing file, bad magic, truncated index, corrupt v2 section).
  explicit MappedSwdb(const std::string& path);
  ~MappedSwdb();

  MappedSwdb(const MappedSwdb&) = delete;
  MappedSwdb& operator=(const MappedSwdb&) = delete;

  std::size_t size() const { return count_; }
  AlphabetKind alphabet() const { return alphabet_; }
  std::uint32_t version() const { return version_; }

  /// True if residues() serves 64-byte-aligned v2 pre-encoded data.
  bool pre_encoded() const { return version_ >= kSwdbVersion2; }

  std::size_t length(std::size_t i) const;
  std::uint64_t total_residues() const { return total_residues_; }
  std::span<const std::uint32_t> lengths() const { return lengths_; }

  /// Lane-batch index (longest-first record ids; see SwdbReader).
  std::span<const std::uint32_t> lane_order() const { return lane_order_; }

  /// Residue codes of record i, zero-copy out of the mapping.
  std::span<const std::uint8_t> residues(std::size_t i) const;

  std::string_view id(std::size_t i) const;
  std::string_view description(std::size_t i) const;

  /// Materialize one record (copies; for interop/tests, not the hot path).
  Sequence record(std::size_t i) const;

  /// Zero-copy views of every record's residues in record order — exactly
  /// an align::DbView, built without touching the data pages.
  std::vector<std::span<const std::uint8_t>> residue_views() const;

 private:
  struct Entry {
    std::uint64_t offset = 0;       ///< v1 record offset (absolute)
    std::uint64_t v2_offset = 0;    ///< pre-encoded offset (absolute, v2)
    std::uint32_t seq_length = 0;
    std::uint16_t id_length = 0;
    std::uint16_t desc_length = 0;
  };

  const std::uint8_t* base() const { return data_; }

  std::string path_;
  const std::uint8_t* data_ = nullptr;  ///< mapping (or fallback buffer)
  std::size_t file_size_ = 0;
  bool mmapped_ = false;
  std::vector<std::uint8_t> fallback_;  ///< used when mmap is unavailable

  AlphabetKind alphabet_ = AlphabetKind::kProtein;
  std::uint32_t version_ = kSwdbVersion1;
  std::size_t count_ = 0;
  std::vector<Entry> entries_;
  std::vector<std::uint32_t> lengths_;
  std::vector<std::uint32_t> lane_order_;
  std::uint64_t total_residues_ = 0;
};

}  // namespace swdual::seq
