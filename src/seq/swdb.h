// SWDB: the binary random-access sequence database format from §IV of the
// paper.
//
// FASTA files are sequential text, so reading "the i-th sequence" requires
// scanning from the start. The paper introduces a simple binary format with
// a few extra fields so both the master and the workers can read sequences
// at any position directly and pre-size memory allocations (all lengths are
// known up front). This is our realization of that format:
//
//   [header]   magic "SWDB", version, alphabet, record count, index offset
//   [records]  residue codes + id + description per record, back to back
//   [index]    per record: data offset, residue/id/description lengths
//
// The reader loads the index (tens of bytes per record) and leaves the data
// on disk, serving O(1) random reads via seek. All integers little-endian.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "seq/sequence.h"

namespace swdual::seq {

/// Current SWDB container version.
inline constexpr std::uint32_t kSwdbVersion = 1;

/// Write all records to an SWDB file. Throws IoError on failure and
/// InvalidArgument if records disagree on alphabet.
void write_swdb(const std::string& path, const std::vector<Sequence>& records,
                AlphabetKind alphabet);

/// Convert a FASTA file to SWDB (the master/worker "convert format" step in
/// the paper's Fig. 6 workflow). Returns the number of records written.
std::size_t convert_fasta_to_swdb(const std::string& fasta_path,
                                  const std::string& swdb_path,
                                  AlphabetKind alphabet);

/// Random-access SWDB reader.
class SwdbReader {
 public:
  /// Opens the file and loads the index; throws IoError if the file is
  /// missing, truncated, or not an SWDB container.
  explicit SwdbReader(const std::string& path);

  std::size_t size() const { return entries_.size(); }
  AlphabetKind alphabet() const { return alphabet_; }

  /// Residue count of record i without touching the data section — the
  /// property that makes task-cost estimation cheap for the scheduler.
  std::size_t length(std::size_t i) const;

  /// Sum of all residue counts (cell-count denominators for GCUPS).
  std::uint64_t total_residues() const { return total_residues_; }

  /// Read one record (seek + read; O(1) in the file position).
  Sequence read(std::size_t i) const;

  /// Read every record in file order.
  std::vector<Sequence> read_all() const;

 private:
  struct Entry {
    std::uint64_t offset = 0;
    std::uint32_t seq_length = 0;
    std::uint16_t id_length = 0;
    std::uint16_t desc_length = 0;
  };

  std::string path_;
  mutable std::ifstream file_;
  AlphabetKind alphabet_ = AlphabetKind::kProtein;
  std::vector<Entry> entries_;
  std::uint64_t total_residues_ = 0;
  std::uint64_t data_end_ = 0;  ///< first byte of the index section
};

}  // namespace swdual::seq
