// Random access into FASTA files via a one-pass index (samtools-faidx
// style).
//
// The paper's argument for a binary format (§IV) is that FASTA cannot serve
// "specific sequences contained in the file" directly. The strongest
// fair baseline is an indexed FASTA: scan once, remember each record's byte
// offset and length, then seek+parse on demand. This module provides that
// baseline (and a useful tool in its own right); bench_binary_format
// compares all three access paths.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "seq/sequence.h"

namespace swdual::seq {

/// Byte-offset index over a FASTA file.
class FastaIndex {
 public:
  /// Scan the file and build the index; throws IoError on malformed input.
  FastaIndex(std::string path, AlphabetKind alphabet);

  std::size_t size() const { return entries_.size(); }

  /// Residue count of record i (known from the indexing pass, no re-read).
  std::size_t length(std::size_t i) const;

  /// Record id of entry i (held in memory by the index).
  const std::string& id(std::size_t i) const;

  /// Read one record by seeking to its byte offset and parsing it.
  Sequence read(std::size_t i) const;

 private:
  struct Entry {
    std::string id;
    std::uint64_t offset = 0;      ///< byte offset of the '>' header line
    std::uint32_t residues = 0;    ///< total residue count
  };

  std::string path_;
  AlphabetKind alphabet_;
  mutable std::ifstream file_;
  std::vector<Entry> entries_;
};

}  // namespace swdual::seq
