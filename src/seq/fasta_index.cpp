#include "seq/fasta_index.h"

#include "util/error.h"
#include "util/strings.h"

namespace swdual::seq {

FastaIndex::FastaIndex(std::string path, AlphabetKind alphabet)
    : path_(std::move(path)), alphabet_(alphabet), file_(path_) {
  if (!file_) throw IoError("cannot open FASTA file: " + path_);

  std::string line;
  std::uint64_t line_start = 0;
  while (true) {
    const auto position = static_cast<std::uint64_t>(file_.tellg());
    if (!std::getline(file_, line)) break;
    line_start = position;
    const std::string_view text = trim(line);
    if (text.empty()) continue;
    if (text.front() == '>') {
      Entry entry;
      entry.offset = line_start;
      std::string_view header = text.substr(1);
      header = trim(header);
      const std::size_t space = header.find_first_of(" \t");
      entry.id = std::string(space == std::string_view::npos
                                 ? header
                                 : header.substr(0, space));
      entries_.push_back(std::move(entry));
    } else if (text.front() != ';') {
      if (entries_.empty()) {
        throw IoError("FASTA: residue data before any header in " + path_);
      }
      std::uint32_t residues = 0;
      for (char c : text) {
        if (c != ' ' && c != '\t') ++residues;
      }
      entries_.back().residues += residues;
    }
  }
  file_.clear();
}

std::size_t FastaIndex::length(std::size_t i) const {
  SWDUAL_REQUIRE(i < entries_.size(), "FASTA index out of range");
  return entries_[i].residues;
}

const std::string& FastaIndex::id(std::size_t i) const {
  SWDUAL_REQUIRE(i < entries_.size(), "FASTA index out of range");
  return entries_[i].id;
}

Sequence FastaIndex::read(std::size_t i) const {
  SWDUAL_REQUIRE(i < entries_.size(), "FASTA index out of range");
  const Entry& entry = entries_[i];
  file_.clear();
  file_.seekg(static_cast<std::streamoff>(entry.offset));

  const Alphabet& codes = Alphabet::get(alphabet_);
  Sequence record;
  record.alphabet = alphabet_;
  record.residues.reserve(entry.residues);

  std::string line;
  bool in_header = true;
  while (std::getline(file_, line)) {
    const std::string_view text = trim(line);
    if (text.empty()) continue;
    if (text.front() == '>') {
      if (!in_header) break;  // next record begins
      in_header = false;
      std::string_view header = trim(text.substr(1));
      const std::size_t space = header.find_first_of(" \t");
      if (space == std::string_view::npos) {
        record.id = std::string(header);
      } else {
        record.id = std::string(header.substr(0, space));
        record.description = std::string(trim(header.substr(space + 1)));
      }
      continue;
    }
    if (text.front() == ';') continue;
    SWDUAL_CHECK(!in_header, "index points at a non-header line");
    for (char c : text) {
      if (c != ' ' && c != '\t') record.residues.push_back(codes.encode(c));
    }
  }
  file_.clear();
  SWDUAL_CHECK(record.residues.size() == entry.residues,
               "FASTA record changed since indexing: " + record.id);
  return record;
}

}  // namespace swdual::seq
