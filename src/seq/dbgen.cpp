#include "seq/dbgen.h"

#include <algorithm>
#include <cmath>

#include "seq/swdb.h"
#include "util/error.h"

namespace swdual::seq {

std::vector<DatabaseProfile> table3_profiles(std::size_t scale_denominator) {
  SWDUAL_REQUIRE(scale_denominator >= 1, "scale denominator must be >= 1");
  const auto scaled = [scale_denominator](std::size_t n) {
    return std::max<std::size_t>(1, n / scale_denominator);
  };
  // Counts and length bounds from Table III. The min/max columns in the
  // paper describe the *query* lengths drawn from each database; we use them
  // as database length bounds as well (UniProt's true span is wider — the
  // heterogeneous query set in §V-C needs sequences of length 4..35213, so
  // UniProt keeps the full span).
  std::vector<DatabaseProfile> profiles = {
      {"ensembl_dog", scaled(25160), 100, 4996, 5.7, 0.65, 101},
      {"ensembl_rat", scaled(32971), 100, 4992, 5.7, 0.65, 102},
      {"refseq_human", scaled(34705), 100, 4981, 5.7, 0.65, 103},
      {"refseq_mouse", scaled(29437), 100, 5000, 5.7, 0.65, 104},
      {"uniprot", scaled(537505), 4, 35213, 5.7, 0.65, 105},
  };
  return profiles;
}

DatabaseProfile table3_profile(const std::string& name,
                               std::size_t scale_denominator) {
  for (DatabaseProfile& profile : table3_profiles(scale_denominator)) {
    if (profile.name == name) return profile;
  }
  throw InvalidArgument("unknown Table III database: " + name);
}

const std::vector<double>& amino_acid_frequencies() {
  // Background frequencies for ARNDCQEGHILKMFPSTWYV (Robinson & Robinson
  // 1991, as used by BLAST's Karlin-Altschul statistics).
  static const std::vector<double> freqs = {
      0.078, 0.051, 0.045, 0.054, 0.019, 0.043, 0.063, 0.074, 0.022, 0.051,
      0.091, 0.057, 0.022, 0.039, 0.052, 0.071, 0.058, 0.013, 0.032, 0.064};
  return freqs;
}

namespace {
/// Cumulative distribution over the 20 standard amino acids.
const std::vector<double>& amino_acid_cdf() {
  static const std::vector<double> cdf = [] {
    std::vector<double> out;
    double total = 0.0;
    for (double f : amino_acid_frequencies()) {
      total += f;
      out.push_back(total);
    }
    // Normalize so the last bucket is exactly 1.
    for (double& v : out) v /= total;
    return out;
  }();
  return cdf;
}

std::uint8_t sample_residue(Rng& rng) {
  const double u = rng.uniform();
  const auto& cdf = amino_acid_cdf();
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  return static_cast<std::uint8_t>(
      std::min<std::ptrdiff_t>(it - cdf.begin(), 19));
}

std::size_t sample_length(Rng& rng, const DatabaseProfile& profile) {
  // Rejection-sample the truncated log-normal; fall back to clamping after
  // a bounded number of tries so pathological profiles still terminate.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double x = rng.lognormal(profile.lognormal_mu,
                                   profile.lognormal_sigma);
    const auto len = static_cast<std::size_t>(std::llround(x));
    if (len >= profile.min_length && len <= profile.max_length) return len;
  }
  const double x =
      rng.lognormal(profile.lognormal_mu, profile.lognormal_sigma);
  return std::clamp(static_cast<std::size_t>(std::llround(std::max(1.0, x))),
                    profile.min_length, profile.max_length);
}
}  // namespace

Sequence random_protein(Rng& rng, std::string id, std::size_t length) {
  Sequence record;
  record.id = std::move(id);
  record.alphabet = AlphabetKind::kProtein;
  record.residues.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    record.residues.push_back(sample_residue(rng));
  }
  return record;
}

std::vector<std::size_t> generate_lengths(const DatabaseProfile& profile) {
  SWDUAL_REQUIRE(profile.num_sequences > 0, "profile has zero sequences");
  SWDUAL_REQUIRE(profile.min_length >= 1 &&
                     profile.min_length <= profile.max_length,
                 "profile length bounds invalid");
  Rng rng(profile.seed);
  std::vector<std::size_t> lengths;
  lengths.reserve(profile.num_sequences);
  // Pin the extremes so min/max length match the profile exactly, as the
  // paper's Table III reports exact smallest/largest query lengths.
  for (std::size_t i = 0; i < profile.num_sequences; ++i) {
    if (i == 0) {
      lengths.push_back(profile.min_length);
    } else if (i == 1 && profile.num_sequences > 1) {
      lengths.push_back(profile.max_length);
    } else {
      lengths.push_back(sample_length(rng, profile));
    }
  }
  return lengths;
}

std::vector<Sequence> generate_database(const DatabaseProfile& profile) {
  const std::vector<std::size_t> lengths = generate_lengths(profile);
  Rng rng(profile.seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<Sequence> records;
  records.reserve(lengths.size());
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    records.push_back(random_protein(
        rng, profile.name + "_" + std::to_string(i), lengths[i]));
  }
  return records;
}

std::size_t generate_database_file(const DatabaseProfile& profile,
                                   const std::string& swdb_path) {
  const std::vector<Sequence> records = generate_database(profile);
  write_swdb(swdb_path, records, AlphabetKind::kProtein);
  return records.size();
}

}  // namespace swdual::seq
