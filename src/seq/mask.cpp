#include "seq/mask.h"

#include <array>
#include <cmath>

#include "util/error.h"

namespace swdual::seq {

double shannon_entropy(std::span<const std::uint8_t> window) {
  if (window.empty()) return 0.0;
  std::array<std::size_t, 256> counts{};
  for (std::uint8_t code : window) counts[code]++;
  double entropy = 0.0;
  const double n = static_cast<double>(window.size());
  for (std::size_t count : counts) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / n;
    entropy -= p * std::log2(p);
  }
  return entropy;
}

std::vector<bool> low_complexity_mask(std::span<const std::uint8_t> residues,
                                      const MaskConfig& config) {
  SWDUAL_REQUIRE(config.window >= 2, "mask window must be at least 2");
  std::vector<bool> flags(residues.size(), false);
  if (residues.size() < config.window) {
    // Short sequences: evaluate the whole sequence as one window.
    if (!residues.empty() &&
        shannon_entropy(residues) < config.entropy_threshold) {
      flags.assign(residues.size(), true);
    }
    return flags;
  }
  // Sliding window with incremental counts: O(n) over the sequence.
  std::array<std::size_t, 256> counts{};
  const double n = static_cast<double>(config.window);
  const auto entropy_of_counts = [&] {
    double entropy = 0.0;
    for (std::size_t count : counts) {
      if (count == 0) continue;
      const double p = static_cast<double>(count) / n;
      entropy -= p * std::log2(p);
    }
    return entropy;
  };
  for (std::size_t i = 0; i < config.window; ++i) counts[residues[i]]++;
  for (std::size_t start = 0;; ++start) {
    if (entropy_of_counts() < config.entropy_threshold) {
      for (std::size_t i = start; i < start + config.window; ++i) {
        flags[i] = true;
      }
    }
    if (start + config.window >= residues.size()) break;
    counts[residues[start]]--;
    counts[residues[start + config.window]]++;
  }
  return flags;
}

std::size_t mask_low_complexity(Sequence& sequence, const MaskConfig& config) {
  const std::vector<bool> flags =
      low_complexity_mask(sequence.residues, config);
  const std::uint8_t wildcard =
      Alphabet::get(sequence.alphabet).wildcard_code();
  std::size_t masked = 0;
  for (std::size_t i = 0; i < flags.size(); ++i) {
    if (flags[i] && sequence.residues[i] != wildcard) {
      sequence.residues[i] = wildcard;
      ++masked;
    }
  }
  return masked;
}

}  // namespace swdual::seq
