// Residue alphabets and letter <-> code translation.
//
// Sequences are stored encoded (one byte per residue, codes 0..N-1) so the
// alignment kernels can index substitution matrices directly without
// per-cell character translation — the same design used by SWIPE and
// CUDASW++. Unknown letters map to the alphabet's wildcard code.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace swdual::seq {

enum class AlphabetKind : std::uint8_t { kDna = 0, kRna = 1, kProtein = 2 };

/// Translation table between ASCII residue letters and compact codes.
class Alphabet {
 public:
  /// The 4-letter DNA alphabet ACGT (+N wildcard).
  static const Alphabet& dna();
  /// The 4-letter RNA alphabet ACGU (+N wildcard).
  static const Alphabet& rna();
  /// The 24-letter protein alphabet in BLOSUM order ARNDCQEGHILKMFPSTWYVBZX*
  /// (X doubles as the wildcard).
  static const Alphabet& protein();
  /// Lookup by kind.
  static const Alphabet& get(AlphabetKind kind);

  AlphabetKind kind() const { return kind_; }
  /// Number of distinct residue codes (including wildcard).
  std::size_t size() const { return letters_.size(); }
  /// The ordered residue letters, code i -> letters()[i].
  std::string_view letters() const { return letters_; }
  /// Code assigned to unknown input letters.
  std::uint8_t wildcard_code() const { return wildcard_; }

  /// Letter -> code; unknown letters (and lowercase) normalize via the table.
  std::uint8_t encode(char letter) const {
    return encode_table_[static_cast<unsigned char>(letter)];
  }
  /// Code -> letter. Out-of-range codes render as '?'.
  char decode(std::uint8_t code) const {
    return code < letters_.size() ? letters_[code] : '?';
  }

  /// Encode a whole string.
  std::vector<std::uint8_t> encode(std::string_view text) const;
  /// Decode a whole code vector.
  std::string decode(const std::vector<std::uint8_t>& codes) const;

  /// True if the letter is an exact member (not mapped to the wildcard).
  bool contains(char letter) const;

 private:
  Alphabet(AlphabetKind kind, std::string letters, std::uint8_t wildcard);

  AlphabetKind kind_;
  std::string letters_;
  std::uint8_t wildcard_;
  std::array<std::uint8_t, 256> encode_table_{};
};

}  // namespace swdual::seq
