// Low-complexity region masking (SEG-style entropy filter).
//
// Real database searches mask low-complexity regions (poly-A runs, simple
// repeats) before scoring: such regions produce inflated Smith–Waterman
// scores that are not evidence of homology. This is a compact single-pass
// variant of Wootton & Federhen's SEG: a sliding window's Shannon entropy is
// compared against a threshold, and residues inside every low-entropy
// window are replaced by the alphabet's wildcard (which BLOSUM62 scores
// -1 against everything, neutralizing the region).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "seq/sequence.h"

namespace swdual::seq {

/// Masking parameters. Defaults follow SEG's classic 12/2.2 trigger for
/// protein sequences (entropy in bits).
struct MaskConfig {
  std::size_t window = 12;
  double entropy_threshold = 2.2;
};

/// Shannon entropy (bits) of a residue window.
double shannon_entropy(std::span<const std::uint8_t> window);

/// Compute the mask: flags[i] is true when residue i lies in at least one
/// window whose entropy is below the threshold.
std::vector<bool> low_complexity_mask(std::span<const std::uint8_t> residues,
                                      const MaskConfig& config = {});

/// Replace masked residues by the alphabet's wildcard code in place.
/// Returns the number of residues masked.
std::size_t mask_low_complexity(Sequence& sequence,
                                const MaskConfig& config = {});

}  // namespace swdual::seq
