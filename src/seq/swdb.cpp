#include "seq/swdb.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <limits>
#include <numeric>

#include "seq/alphabet.h"
#include "seq/fasta.h"
#include "util/error.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define SWDUAL_HAVE_MMAP 1
#endif

namespace swdual::seq {

namespace {

constexpr std::array<char, 4> kMagic = {'S', 'W', 'D', 'B'};
constexpr std::array<char, 4> kV2Magic = {'S', 'W', 'V', '2'};
/// v1 header: magic + version + alphabet(+pad) + count + index offset.
constexpr std::uint64_t kHeaderBytesV1 = 4 + 4 + 4 + 8 + 8;
/// v2 header: v1 header + pre-encoded section offset.
constexpr std::uint64_t kHeaderBytesV2 = kHeaderBytesV1 + 8;
constexpr std::uint64_t kIndexEntryBytes = 8 + 4 + 2 + 2;
/// v2 section: magic + block + data offset + data size ...
constexpr std::uint64_t kV2SectionHeaderBytes = 4 + 4 + 8 + 8;
/// ... then per record a blocked offset + padded length, then the order.
constexpr std::uint64_t kV2EntryBytes = 8 + 4;
constexpr std::uint64_t kV2OrderEntryBytes = 4;

template <typename T>
void write_le(std::ostream& out, T value) {
  static_assert(std::is_unsigned_v<T>);
  std::array<char, sizeof(T)> bytes;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    bytes[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
  out.write(bytes.data(), bytes.size());
}

template <typename T>
T read_le(std::istream& in) {
  static_assert(std::is_unsigned_v<T>);
  std::array<char, sizeof(T)> bytes;
  in.read(bytes.data(), bytes.size());
  T value = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    value = static_cast<T>(
        value |
        static_cast<T>(static_cast<unsigned char>(bytes[i])) << (8 * i));
  }
  return value;
}

/// Bounds-checked little-endian cursor over in-memory bytes; both readers
/// parse header/index/v2 tables through it so their validation is identical.
class ByteCursor {
 public:
  ByteCursor(const std::uint8_t* begin, std::size_t size,
             const std::string& path)
      : p_(begin), end_(begin + size), path_(path) {}

  template <typename T>
  T get() {
    static_assert(std::is_unsigned_v<T>);
    if (static_cast<std::size_t>(end_ - p_) < sizeof(T)) {
      throw IoError("truncated SWDB structure: " + path_);
    }
    T value = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      value = static_cast<T>(value | static_cast<T>(p_[i]) << (8 * i));
    }
    p_ += sizeof(T);
    return value;
  }

  bool match(const std::array<char, 4>& magic) {
    if (static_cast<std::size_t>(end_ - p_) < magic.size()) return false;
    const bool ok = std::memcmp(p_, magic.data(), magic.size()) == 0;
    p_ += magic.size();
    return ok;
  }

 private:
  const std::uint8_t* p_;
  const std::uint8_t* end_;
  const std::string& path_;
};

struct ParsedHeader {
  std::uint32_t version = 0;
  AlphabetKind alphabet = AlphabetKind::kProtein;
  std::uint64_t count = 0;
  std::uint64_t index_offset = 0;
  std::uint64_t v2_offset = 0;     ///< meaningful for version >= 2
  std::uint64_t header_bytes = 0;  ///< 28 (v1) or 36 (v2)
};

ParsedHeader parse_header(const std::uint8_t* bytes, std::uint64_t avail,
                          std::uint64_t file_size, const std::string& path) {
  ByteCursor cur(bytes, static_cast<std::size_t>(avail), path);
  if (avail < kHeaderBytesV1 || !cur.match(kMagic)) {
    throw IoError("not an SWDB file (bad magic): " + path);
  }
  ParsedHeader h;
  h.version = cur.get<std::uint32_t>();
  if (h.version != kSwdbVersion1 && h.version != kSwdbVersion2) {
    throw IoError("unsupported SWDB version " + std::to_string(h.version) +
                  " in " + path);
  }
  const auto alphabet_byte = cur.get<std::uint8_t>();
  if (alphabet_byte > 2) {
    throw IoError("corrupt SWDB alphabet field in " + path);
  }
  h.alphabet = static_cast<AlphabetKind>(alphabet_byte);
  cur.get<std::uint8_t>();
  cur.get<std::uint8_t>();
  cur.get<std::uint8_t>();
  h.count = cur.get<std::uint64_t>();
  h.index_offset = cur.get<std::uint64_t>();
  h.header_bytes = kHeaderBytesV1;
  if (h.version >= kSwdbVersion2) {
    if (avail < kHeaderBytesV2) {
      throw IoError("truncated SWDB header: " + path);
    }
    h.v2_offset = cur.get<std::uint64_t>();
    h.header_bytes = kHeaderBytesV2;
  }
  // Validate against the actual file size before allocating anything —
  // corrupt counts/offsets must fail cleanly, not OOM.
  if (h.index_offset > file_size ||
      h.count > (file_size - h.index_offset) / kIndexEntryBytes) {
    throw IoError("corrupt SWDB header (index out of bounds): " + path);
  }
  return h;
}

struct RawEntry {
  std::uint64_t offset = 0;
  std::uint32_t seq_length = 0;
  std::uint16_t id_length = 0;
  std::uint16_t desc_length = 0;
};

/// Parse + validate the index section (count entries starting at `bytes`).
/// `data_end` is the first byte past the record section (== index offset).
std::vector<RawEntry> parse_index(const std::uint8_t* bytes,
                                  std::uint64_t count,
                                  std::uint64_t header_bytes,
                                  std::uint64_t data_end,
                                  const std::string& path) {
  ByteCursor cur(bytes, static_cast<std::size_t>(count * kIndexEntryBytes),
                 path);
  std::vector<RawEntry> entries(static_cast<std::size_t>(count));
  for (RawEntry& entry : entries) {
    entry.offset = cur.get<std::uint64_t>();
    entry.seq_length = cur.get<std::uint32_t>();
    entry.id_length = cur.get<std::uint16_t>();
    entry.desc_length = cur.get<std::uint16_t>();
    const std::uint64_t record_end =
        entry.offset + entry.seq_length + entry.id_length + entry.desc_length;
    if (entry.offset < header_bytes || record_end > data_end) {
      throw IoError("corrupt SWDB index entry: " + path);
    }
  }
  return entries;
}

struct ParsedV2 {
  std::uint32_t block = 0;
  std::uint64_t data_offset = 0;  ///< absolute, block-aligned
  std::uint64_t data_bytes = 0;
  std::vector<std::uint64_t> rel_offsets;  ///< per record, into the data blob
  std::vector<std::uint32_t> padded_lengths;
  std::vector<std::uint32_t> order;  ///< lane-batch index (longest first)
};

/// Parse + validate the v2 pre-encoded section tables. `bytes` holds at
/// least the section header + entry/order tables (checked by the caller).
ParsedV2 parse_v2_tables(const std::uint8_t* bytes, std::uint64_t avail,
                         std::uint64_t v2_offset, std::uint64_t file_size,
                         std::span<const std::uint32_t> lengths,
                         const std::string& path) {
  const std::uint64_t count = lengths.size();
  ByteCursor cur(bytes, static_cast<std::size_t>(avail), path);
  if (!cur.match(kV2Magic)) {
    throw IoError("corrupt SWDB v2 section (bad magic): " + path);
  }
  ParsedV2 v2;
  v2.block = cur.get<std::uint32_t>();
  if (v2.block == 0 || (v2.block & (v2.block - 1)) != 0 || v2.block > 4096) {
    throw IoError("corrupt SWDB v2 section (bad block size): " + path);
  }
  v2.data_offset = cur.get<std::uint64_t>();
  v2.data_bytes = cur.get<std::uint64_t>();
  const std::uint64_t tables_end = v2_offset + kV2SectionHeaderBytes +
                                   count * (kV2EntryBytes + kV2OrderEntryBytes);
  if (v2.data_offset < tables_end || v2.data_offset % v2.block != 0 ||
      v2.data_offset > file_size || v2.data_bytes > file_size - v2.data_offset) {
    throw IoError("corrupt SWDB v2 section (data out of bounds): " + path);
  }

  v2.rel_offsets.resize(static_cast<std::size_t>(count));
  v2.padded_lengths.resize(static_cast<std::size_t>(count));
  for (std::size_t i = 0; i < count; ++i) {
    v2.rel_offsets[i] = cur.get<std::uint64_t>();
    v2.padded_lengths[i] = cur.get<std::uint32_t>();
    const std::uint64_t padded = v2.padded_lengths[i];
    const bool aligned =
        v2.rel_offsets[i] % v2.block == 0 && padded % v2.block == 0;
    const bool sized = padded >= lengths[i] &&
                       padded - lengths[i] < v2.block &&
                       v2.rel_offsets[i] <= v2.data_bytes &&
                       padded <= v2.data_bytes - v2.rel_offsets[i];
    if (!aligned || !sized) {
      throw IoError("corrupt SWDB v2 entry: " + path);
    }
  }

  // The lane order must be a permutation visiting records longest-first —
  // kernels trust it blindly, so a corrupt one is a structural error.
  v2.order.resize(static_cast<std::size_t>(count));
  std::vector<bool> seen(static_cast<std::size_t>(count), false);
  std::uint32_t prev_length = 0;
  for (std::size_t k = 0; k < count; ++k) {
    const auto id = cur.get<std::uint32_t>();
    if (id >= count || seen[id] || (k > 0 && lengths[id] > prev_length)) {
      throw IoError("corrupt SWDB v2 lane order: " + path);
    }
    seen[id] = true;
    prev_length = lengths[id];
    v2.order[k] = id;
  }
  return v2;
}

/// The lane-batch order for files without a v2 section: record ids sorted
/// longest-first, ties broken by id (stable sort) — the same rule the
/// writer uses, so v1 and v2 databases batch identically.
std::vector<std::uint32_t> lane_order_from_lengths(
    std::span<const std::uint32_t> lengths) {
  std::vector<std::uint32_t> order(lengths.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return lengths[a] > lengths[b];
                   });
  return order;
}

std::uint64_t align_up(std::uint64_t value, std::uint64_t block) {
  return (value + block - 1) / block * block;
}

}  // namespace

void write_swdb(const std::string& path, const std::vector<Sequence>& records,
                AlphabetKind alphabet, std::uint32_t version) {
  SWDUAL_REQUIRE(version == kSwdbVersion1 || version == kSwdbVersion2,
                 "unknown SWDB version " + std::to_string(version));
  for (const Sequence& record : records) {
    SWDUAL_REQUIRE(record.alphabet == alphabet,
                   "record '" + record.id + "' has a different alphabet");
    SWDUAL_REQUIRE(record.id.size() <= std::numeric_limits<std::uint16_t>::max(),
                   "record id too long: " + record.id);
    SWDUAL_REQUIRE(
        record.description.size() <= std::numeric_limits<std::uint16_t>::max(),
        "record description too long: " + record.id);
    SWDUAL_REQUIRE(
        record.length() <= std::numeric_limits<std::uint32_t>::max(),
        "record too long: " + record.id);
  }

  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open SWDB for writing: " + path);

  // Header (index and v2 offsets back-patched once known).
  out.write(kMagic.data(), kMagic.size());
  write_le<std::uint32_t>(out, version);
  write_le<std::uint8_t>(out, static_cast<std::uint8_t>(alphabet));
  write_le<std::uint8_t>(out, 0);
  write_le<std::uint8_t>(out, 0);
  write_le<std::uint8_t>(out, 0);
  write_le<std::uint64_t>(out, records.size());
  const std::streampos index_offset_pos = out.tellp();
  write_le<std::uint64_t>(out, 0);  // placeholder
  std::streampos v2_offset_pos{};
  if (version >= kSwdbVersion2) {
    v2_offset_pos = out.tellp();
    write_le<std::uint64_t>(out, 0);  // placeholder
  }

  std::vector<std::uint64_t> offsets;
  offsets.reserve(records.size());
  for (const Sequence& record : records) {
    offsets.push_back(static_cast<std::uint64_t>(out.tellp()));
    out.write(reinterpret_cast<const char*>(record.residues.data()),
              static_cast<std::streamsize>(record.residues.size()));
    out.write(record.id.data(),
              static_cast<std::streamsize>(record.id.size()));
    out.write(record.description.data(),
              static_cast<std::streamsize>(record.description.size()));
  }

  const auto index_offset = static_cast<std::uint64_t>(out.tellp());
  for (std::size_t i = 0; i < records.size(); ++i) {
    write_le<std::uint64_t>(out, offsets[i]);
    write_le<std::uint32_t>(out,
                            static_cast<std::uint32_t>(records[i].length()));
    write_le<std::uint16_t>(out,
                            static_cast<std::uint16_t>(records[i].id.size()));
    write_le<std::uint16_t>(
        out, static_cast<std::uint16_t>(records[i].description.size()));
  }

  std::uint64_t v2_offset = 0;
  if (version >= kSwdbVersion2) {
    // Pre-encoded section: every record's residues again, but padded with
    // the wildcard code to a block multiple and starting block-aligned, so
    // a mapped reader hands the bytes straight to the SIMD kernels.
    v2_offset = static_cast<std::uint64_t>(out.tellp());
    const std::uint64_t tables_end =
        v2_offset + kV2SectionHeaderBytes +
        records.size() * (kV2EntryBytes + kV2OrderEntryBytes);
    const std::uint64_t data_offset = align_up(tables_end, kSwdbV2Block);
    std::uint64_t data_bytes = 0;
    for (const Sequence& record : records) {
      data_bytes += align_up(record.length(), kSwdbV2Block);
    }

    out.write(kV2Magic.data(), kV2Magic.size());
    write_le<std::uint32_t>(out, static_cast<std::uint32_t>(kSwdbV2Block));
    write_le<std::uint64_t>(out, data_offset);
    write_le<std::uint64_t>(out, data_bytes);

    std::uint64_t rel = 0;
    for (const Sequence& record : records) {
      const std::uint64_t padded = align_up(record.length(), kSwdbV2Block);
      write_le<std::uint64_t>(out, rel);
      write_le<std::uint32_t>(out, static_cast<std::uint32_t>(padded));
      rel += padded;
    }

    std::vector<std::uint32_t> lengths;
    lengths.reserve(records.size());
    for (const Sequence& record : records) {
      lengths.push_back(static_cast<std::uint32_t>(record.length()));
    }
    for (const std::uint32_t id : lane_order_from_lengths(lengths)) {
      write_le<std::uint32_t>(out, id);
    }

    const std::string gap(static_cast<std::size_t>(data_offset - tables_end),
                          '\0');
    out.write(gap.data(), static_cast<std::streamsize>(gap.size()));

    const std::uint8_t wildcard = Alphabet::get(alphabet).wildcard_code();
    for (const Sequence& record : records) {
      out.write(reinterpret_cast<const char*>(record.residues.data()),
                static_cast<std::streamsize>(record.residues.size()));
      const std::uint64_t padded = align_up(record.length(), kSwdbV2Block);
      const std::string pad(
          static_cast<std::size_t>(padded - record.length()),
          static_cast<char>(wildcard));
      out.write(pad.data(), static_cast<std::streamsize>(pad.size()));
    }
  }

  out.seekp(index_offset_pos);
  write_le<std::uint64_t>(out, index_offset);
  if (version >= kSwdbVersion2) {
    out.seekp(v2_offset_pos);
    write_le<std::uint64_t>(out, v2_offset);
  }
  out.flush();
  if (!out) throw IoError("SWDB write failed: " + path);
}

std::size_t convert_fasta_to_swdb(const std::string& fasta_path,
                                  const std::string& swdb_path,
                                  AlphabetKind alphabet,
                                  std::uint32_t version) {
  const std::vector<Sequence> records = read_fasta_file(fasta_path, alphabet);
  write_swdb(swdb_path, records, alphabet, version);
  return records.size();
}

SwdbReader::SwdbReader(const std::string& path)
    : path_(path), file_(path, std::ios::binary) {
  if (!file_) throw IoError("cannot open SWDB file: " + path);

  file_.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(file_.tellg());
  file_.seekg(0);

  std::array<std::uint8_t, kHeaderBytesV2> header_bytes{};
  const std::uint64_t header_avail = std::min<std::uint64_t>(
      file_size, header_bytes.size());
  file_.read(reinterpret_cast<char*>(header_bytes.data()),
             static_cast<std::streamsize>(header_avail));
  if (!file_ && header_avail > 0) {
    throw IoError("truncated SWDB header: " + path);
  }
  const ParsedHeader header =
      parse_header(header_bytes.data(), header_avail, file_size, path);
  version_ = header.version;
  alphabet_ = header.alphabet;
  data_end_ = header.index_offset;

  std::vector<std::uint8_t> index_bytes(
      static_cast<std::size_t>(header.count * kIndexEntryBytes));
  file_.clear();
  file_.seekg(static_cast<std::streamoff>(header.index_offset));
  file_.read(reinterpret_cast<char*>(index_bytes.data()),
             static_cast<std::streamsize>(index_bytes.size()));
  if (!file_ && !index_bytes.empty()) {
    throw IoError("truncated SWDB index: " + path);
  }
  const std::vector<RawEntry> raw = parse_index(
      index_bytes.data(), header.count, header.header_bytes, data_end_, path);
  entries_.reserve(raw.size());
  lengths_.reserve(raw.size());
  for (const RawEntry& entry : raw) {
    entries_.push_back(
        {entry.offset, entry.seq_length, entry.id_length, entry.desc_length});
    lengths_.push_back(entry.seq_length);
    total_residues_ += entry.seq_length;
  }

  if (version_ >= kSwdbVersion2) {
    const std::uint64_t tables_size =
        kV2SectionHeaderBytes +
        header.count * (kV2EntryBytes + kV2OrderEntryBytes);
    if (header.v2_offset < header.index_offset ||
        header.v2_offset > file_size ||
        tables_size > file_size - header.v2_offset) {
      throw IoError("corrupt SWDB v2 section (out of bounds): " + path);
    }
    std::vector<std::uint8_t> v2_bytes(static_cast<std::size_t>(tables_size));
    file_.clear();
    file_.seekg(static_cast<std::streamoff>(header.v2_offset));
    file_.read(reinterpret_cast<char*>(v2_bytes.data()),
               static_cast<std::streamsize>(v2_bytes.size()));
    if (!file_) throw IoError("truncated SWDB v2 section: " + path);
    ParsedV2 v2 = parse_v2_tables(v2_bytes.data(), tables_size,
                                  header.v2_offset, file_size, lengths_, path);
    lane_order_ = std::move(v2.order);
  } else {
    lane_order_ = lane_order_from_lengths(lengths_);
  }
}

std::size_t SwdbReader::length(std::size_t i) const {
  SWDUAL_REQUIRE(i < entries_.size(), "SWDB record index out of range");
  return entries_[i].seq_length;
}

Sequence SwdbReader::read(std::size_t i) const {
  SWDUAL_REQUIRE(i < entries_.size(), "SWDB record index out of range");
  const Entry& entry = entries_[i];
  file_.clear();
  file_.seekg(static_cast<std::streamoff>(entry.offset));
  Sequence record;
  record.alphabet = alphabet_;
  record.residues.resize(entry.seq_length);
  file_.read(reinterpret_cast<char*>(record.residues.data()),
             entry.seq_length);
  record.id.resize(entry.id_length);
  file_.read(record.id.data(), entry.id_length);
  record.description.resize(entry.desc_length);
  file_.read(record.description.data(), entry.desc_length);
  if (!file_) throw IoError("truncated SWDB record in " + path_);
  return record;
}

std::vector<Sequence> SwdbReader::read_all() const {
  std::vector<Sequence> records;
  records.reserve(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    records.push_back(read(i));
  }
  return records;
}

MappedSwdb::MappedSwdb(const std::string& path) : path_(path) {
#if SWDUAL_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw IoError("cannot open SWDB file: " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw IoError("cannot stat SWDB file: " + path);
  }
  file_size_ = static_cast<std::size_t>(st.st_size);
  if (file_size_ > 0) {
    void* map = ::mmap(nullptr, file_size_, PROT_READ, MAP_SHARED, fd, 0);
    ::close(fd);
    if (map == MAP_FAILED) throw IoError("cannot mmap SWDB file: " + path);
    data_ = static_cast<const std::uint8_t*>(map);
    mmapped_ = true;
  } else {
    ::close(fd);
  }
#else
  // No mmap on this platform: fall back to reading the file into one
  // buffer. Still a single shared copy per MappedSwdb, just not lazily
  // paged by the OS.
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open SWDB file: " + path);
  in.seekg(0, std::ios::end);
  fallback_.resize(static_cast<std::size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(fallback_.data()),
          static_cast<std::streamsize>(fallback_.size()));
  if (!in && !fallback_.empty()) {
    throw IoError("cannot read SWDB file: " + path);
  }
  data_ = fallback_.data();
  file_size_ = fallback_.size();
#endif

  try {
    const ParsedHeader header =
        parse_header(data_, file_size_, file_size_, path);
    version_ = header.version;
    alphabet_ = header.alphabet;
    count_ = static_cast<std::size_t>(header.count);

    const std::vector<RawEntry> raw =
        parse_index(base() + header.index_offset, header.count,
                    header.header_bytes, header.index_offset, path);
    entries_.reserve(raw.size());
    lengths_.reserve(raw.size());
    for (const RawEntry& entry : raw) {
      Entry e;
      e.offset = entry.offset;
      e.seq_length = entry.seq_length;
      e.id_length = entry.id_length;
      e.desc_length = entry.desc_length;
      entries_.push_back(e);
      lengths_.push_back(entry.seq_length);
      total_residues_ += entry.seq_length;
    }

    if (version_ >= kSwdbVersion2) {
      const std::uint64_t tables_size =
          kV2SectionHeaderBytes +
          header.count * (kV2EntryBytes + kV2OrderEntryBytes);
      if (header.v2_offset < header.index_offset ||
          header.v2_offset > file_size_ ||
          tables_size > file_size_ - header.v2_offset) {
        throw IoError("corrupt SWDB v2 section (out of bounds): " + path);
      }
      ParsedV2 v2 =
          parse_v2_tables(base() + header.v2_offset, tables_size,
                          header.v2_offset, file_size_, lengths_, path);
      for (std::size_t i = 0; i < entries_.size(); ++i) {
        entries_[i].v2_offset = v2.data_offset + v2.rel_offsets[i];
      }
      lane_order_ = std::move(v2.order);
    } else {
      lane_order_ = lane_order_from_lengths(lengths_);
    }
  } catch (...) {
#if SWDUAL_HAVE_MMAP
    if (mmapped_) ::munmap(const_cast<std::uint8_t*>(data_), file_size_);
#endif
    throw;
  }
}

MappedSwdb::~MappedSwdb() {
#if SWDUAL_HAVE_MMAP
  if (mmapped_) ::munmap(const_cast<std::uint8_t*>(data_), file_size_);
#endif
}

std::size_t MappedSwdb::length(std::size_t i) const {
  SWDUAL_REQUIRE(i < entries_.size(), "SWDB record index out of range");
  return entries_[i].seq_length;
}

std::span<const std::uint8_t> MappedSwdb::residues(std::size_t i) const {
  SWDUAL_REQUIRE(i < entries_.size(), "SWDB record index out of range");
  const Entry& entry = entries_[i];
  const std::uint64_t at =
      version_ >= kSwdbVersion2 ? entry.v2_offset : entry.offset;
  return {base() + at, entry.seq_length};
}

std::string_view MappedSwdb::id(std::size_t i) const {
  SWDUAL_REQUIRE(i < entries_.size(), "SWDB record index out of range");
  const Entry& entry = entries_[i];
  return {reinterpret_cast<const char*>(base() + entry.offset +
                                        entry.seq_length),
          entry.id_length};
}

std::string_view MappedSwdb::description(std::size_t i) const {
  SWDUAL_REQUIRE(i < entries_.size(), "SWDB record index out of range");
  const Entry& entry = entries_[i];
  return {reinterpret_cast<const char*>(base() + entry.offset +
                                        entry.seq_length + entry.id_length),
          entry.desc_length};
}

Sequence MappedSwdb::record(std::size_t i) const {
  const std::span<const std::uint8_t> res = residues(i);
  Sequence record;
  record.alphabet = alphabet_;
  record.residues.assign(res.begin(), res.end());
  record.id = std::string(id(i));
  record.description = std::string(description(i));
  return record;
}

std::vector<std::span<const std::uint8_t>> MappedSwdb::residue_views() const {
  std::vector<std::span<const std::uint8_t>> views;
  views.reserve(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    views.push_back(residues(i));
  }
  return views;
}

}  // namespace swdual::seq
