#include "seq/swdb.h"

#include <array>
#include <cstring>
#include <limits>

#include "seq/fasta.h"
#include "util/error.h"

namespace swdual::seq {

namespace {

constexpr std::array<char, 4> kMagic = {'S', 'W', 'D', 'B'};
constexpr std::uint64_t kHeaderBytes = 4 + 4 + 4 + 8 + 8;

template <typename T>
void write_le(std::ostream& out, T value) {
  static_assert(std::is_unsigned_v<T>);
  std::array<char, sizeof(T)> bytes;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    bytes[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
  out.write(bytes.data(), bytes.size());
}

template <typename T>
T read_le(std::istream& in) {
  static_assert(std::is_unsigned_v<T>);
  std::array<char, sizeof(T)> bytes;
  in.read(bytes.data(), bytes.size());
  T value = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    value = static_cast<T>(
        value |
        static_cast<T>(static_cast<unsigned char>(bytes[i])) << (8 * i));
  }
  return value;
}

}  // namespace

void write_swdb(const std::string& path, const std::vector<Sequence>& records,
                AlphabetKind alphabet) {
  for (const Sequence& record : records) {
    SWDUAL_REQUIRE(record.alphabet == alphabet,
                   "record '" + record.id + "' has a different alphabet");
    SWDUAL_REQUIRE(record.id.size() <= std::numeric_limits<std::uint16_t>::max(),
                   "record id too long: " + record.id);
    SWDUAL_REQUIRE(
        record.description.size() <= std::numeric_limits<std::uint16_t>::max(),
        "record description too long: " + record.id);
    SWDUAL_REQUIRE(
        record.length() <= std::numeric_limits<std::uint32_t>::max(),
        "record too long: " + record.id);
  }

  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open SWDB for writing: " + path);

  // Header (index offset back-patched after the data section is written).
  out.write(kMagic.data(), kMagic.size());
  write_le<std::uint32_t>(out, kSwdbVersion);
  write_le<std::uint8_t>(out, static_cast<std::uint8_t>(alphabet));
  write_le<std::uint8_t>(out, 0);
  write_le<std::uint8_t>(out, 0);
  write_le<std::uint8_t>(out, 0);
  write_le<std::uint64_t>(out, records.size());
  const std::streampos index_offset_pos = out.tellp();
  write_le<std::uint64_t>(out, 0);  // placeholder

  std::vector<std::uint64_t> offsets;
  offsets.reserve(records.size());
  for (const Sequence& record : records) {
    offsets.push_back(static_cast<std::uint64_t>(out.tellp()));
    out.write(reinterpret_cast<const char*>(record.residues.data()),
              static_cast<std::streamsize>(record.residues.size()));
    out.write(record.id.data(),
              static_cast<std::streamsize>(record.id.size()));
    out.write(record.description.data(),
              static_cast<std::streamsize>(record.description.size()));
  }

  const auto index_offset = static_cast<std::uint64_t>(out.tellp());
  for (std::size_t i = 0; i < records.size(); ++i) {
    write_le<std::uint64_t>(out, offsets[i]);
    write_le<std::uint32_t>(out,
                            static_cast<std::uint32_t>(records[i].length()));
    write_le<std::uint16_t>(out,
                            static_cast<std::uint16_t>(records[i].id.size()));
    write_le<std::uint16_t>(
        out, static_cast<std::uint16_t>(records[i].description.size()));
  }

  out.seekp(index_offset_pos);
  write_le<std::uint64_t>(out, index_offset);
  out.flush();
  if (!out) throw IoError("SWDB write failed: " + path);
}

std::size_t convert_fasta_to_swdb(const std::string& fasta_path,
                                  const std::string& swdb_path,
                                  AlphabetKind alphabet) {
  const std::vector<Sequence> records = read_fasta_file(fasta_path, alphabet);
  write_swdb(swdb_path, records, alphabet);
  return records.size();
}

SwdbReader::SwdbReader(const std::string& path)
    : path_(path), file_(path, std::ios::binary) {
  if (!file_) throw IoError("cannot open SWDB file: " + path);

  std::array<char, 4> magic;
  file_.read(magic.data(), magic.size());
  if (!file_ || magic != kMagic) {
    throw IoError("not an SWDB file (bad magic): " + path);
  }
  const auto version = read_le<std::uint32_t>(file_);
  if (version != kSwdbVersion) {
    throw IoError("unsupported SWDB version " + std::to_string(version) +
                  " in " + path);
  }
  const auto alphabet_byte = read_le<std::uint8_t>(file_);
  if (alphabet_byte > 2) {
    throw IoError("corrupt SWDB alphabet field in " + path);
  }
  alphabet_ = static_cast<AlphabetKind>(alphabet_byte);
  read_le<std::uint8_t>(file_);
  read_le<std::uint8_t>(file_);
  read_le<std::uint8_t>(file_);
  const auto count = read_le<std::uint64_t>(file_);
  const auto index_offset = read_le<std::uint64_t>(file_);
  if (!file_) throw IoError("truncated SWDB header: " + path);

  // Validate the header against the actual file size before allocating
  // anything — corrupt counts/offsets must fail cleanly, not OOM.
  file_.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(file_.tellg());
  constexpr std::uint64_t kEntrySize = 8 + 4 + 2 + 2;
  if (index_offset > file_size ||
      count > (file_size - index_offset) / kEntrySize) {
    throw IoError("corrupt SWDB header (index out of bounds): " + path);
  }
  data_end_ = index_offset;

  file_.seekg(static_cast<std::streamoff>(index_offset));
  entries_.resize(count);
  for (Entry& entry : entries_) {
    entry.offset = read_le<std::uint64_t>(file_);
    entry.seq_length = read_le<std::uint32_t>(file_);
    entry.id_length = read_le<std::uint16_t>(file_);
    entry.desc_length = read_le<std::uint16_t>(file_);
    const std::uint64_t record_end =
        entry.offset + entry.seq_length + entry.id_length + entry.desc_length;
    if (entry.offset < kHeaderBytes || record_end > data_end_) {
      throw IoError("corrupt SWDB index entry: " + path);
    }
    total_residues_ += entry.seq_length;
  }
  if (!file_) throw IoError("truncated SWDB index: " + path);
}

std::size_t SwdbReader::length(std::size_t i) const {
  SWDUAL_REQUIRE(i < entries_.size(), "SWDB record index out of range");
  return entries_[i].seq_length;
}

Sequence SwdbReader::read(std::size_t i) const {
  SWDUAL_REQUIRE(i < entries_.size(), "SWDB record index out of range");
  const Entry& entry = entries_[i];
  file_.clear();
  file_.seekg(static_cast<std::streamoff>(entry.offset));
  Sequence record;
  record.alphabet = alphabet_;
  record.residues.resize(entry.seq_length);
  file_.read(reinterpret_cast<char*>(record.residues.data()),
             entry.seq_length);
  record.id.resize(entry.id_length);
  file_.read(record.id.data(), entry.id_length);
  record.description.resize(entry.desc_length);
  file_.read(record.description.data(), entry.desc_length);
  if (!file_) throw IoError("truncated SWDB record in " + path_);
  return record;
}

std::vector<Sequence> SwdbReader::read_all() const {
  std::vector<Sequence> records;
  records.reserve(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    records.push_back(read(i));
  }
  return records;
}

}  // namespace swdual::seq
