// Synthetic genomic database generation.
//
// The paper evaluates against five real protein databases (Table III):
//
//   Ensembl Dog    25,160 seqs   Ensembl Rat    32,971 seqs
//   RefSeq Human   34,705 seqs   RefSeq Mouse   29,437 seqs
//   UniProt       537,505 seqs
//
// Those databases are not redistributable here, so we generate synthetic
// stand-ins with matched sequence counts and realistic length distributions.
// Smith–Waterman cost depends only on sequence lengths (the DP matrix has
// |q|·|d| cells), so a database with the same count/length profile has the
// same cost structure as the real one — which is what the scheduling
// experiments measure. Residues are drawn from the natural amino-acid
// background frequencies so substitution-matrix score statistics are also
// realistic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "seq/sequence.h"
#include "util/rng.h"

namespace swdual::seq {

/// Parameters describing one database to synthesize. Lengths are drawn from
/// a log-normal distribution (the canonical model for protein lengths)
/// truncated to [min_length, max_length].
struct DatabaseProfile {
  std::string name;
  std::size_t num_sequences = 0;
  std::size_t min_length = 0;
  std::size_t max_length = 0;
  double lognormal_mu = 5.7;      // median length ≈ exp(mu) ≈ 300 aa
  double lognormal_sigma = 0.65;  // UniProt-like spread
  std::uint64_t seed = 1;
};

/// The five Table III database profiles, optionally scaled down.
/// `scale_denominator = 1` reproduces the paper's sequence counts exactly;
/// larger values divide the counts (lengths are unchanged) so the real
/// kernels finish in laptop time. The scaling factor must be recorded in any
/// reported result (the bench harness does this automatically).
std::vector<DatabaseProfile> table3_profiles(std::size_t scale_denominator);

/// Look up one of the Table III profiles by name ("uniprot", "ensembl_dog",
/// "ensembl_rat", "refseq_human", "refseq_mouse").
DatabaseProfile table3_profile(const std::string& name,
                               std::size_t scale_denominator);

/// Natural amino-acid background frequencies (Robinson & Robinson order
/// matching Alphabet::protein()'s first 20 codes).
const std::vector<double>& amino_acid_frequencies();

/// Generate one random protein sequence of exactly `length` residues.
Sequence random_protein(Rng& rng, std::string id, std::size_t length);

/// Generate only the sequence-length profile of a database (deterministic in
/// profile.seed; identical to the lengths of generate_database()). Smith–
/// Waterman cost is a function of lengths alone, so paper-scale scheduling
/// experiments can run from this without materializing 537k sequences.
std::vector<std::size_t> generate_lengths(const DatabaseProfile& profile);

/// Generate a full synthetic database for the profile (deterministic in
/// profile.seed).
std::vector<Sequence> generate_database(const DatabaseProfile& profile);

/// Generate and persist a database as SWDB; returns number of records.
std::size_t generate_database_file(const DatabaseProfile& profile,
                                   const std::string& swdb_path);

}  // namespace swdual::seq
