#include "seq/dbstats.h"

#include <algorithm>

namespace swdual::seq {

DatabaseStats compute_stats_from_lengths(
    const std::vector<std::size_t>& lengths) {
  DatabaseStats stats;
  stats.num_sequences = lengths.size();
  if (lengths.empty()) return stats;
  stats.min_length = *std::min_element(lengths.begin(), lengths.end());
  stats.max_length = *std::max_element(lengths.begin(), lengths.end());
  for (std::size_t len : lengths) stats.total_residues += len;
  stats.mean_length = static_cast<double>(stats.total_residues) /
                      static_cast<double>(stats.num_sequences);
  return stats;
}

DatabaseStats compute_stats(const std::vector<Sequence>& records) {
  std::vector<std::size_t> lengths;
  lengths.reserve(records.size());
  for (const Sequence& record : records) lengths.push_back(record.length());
  return compute_stats_from_lengths(lengths);
}

DatabaseStats compute_stats(const SwdbReader& db) {
  DatabaseStats stats;
  stats.num_sequences = db.size();
  if (db.size() == 0) return stats;
  const std::span<const std::uint32_t> lengths = db.lengths();
  stats.min_length = *std::min_element(lengths.begin(), lengths.end());
  stats.max_length = *std::max_element(lengths.begin(), lengths.end());
  stats.total_residues = db.total_residues();
  stats.mean_length = static_cast<double>(stats.total_residues) /
                      static_cast<double>(stats.num_sequences);
  return stats;
}

}  // namespace swdual::seq
