#include "seq/fasta.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace swdual::seq {

std::vector<Sequence> read_fasta(std::istream& in, AlphabetKind alphabet) {
  const Alphabet& codes = Alphabet::get(alphabet);
  std::vector<Sequence> records;
  Sequence current;
  bool in_record = false;

  const auto flush = [&] {
    if (in_record) records.push_back(std::move(current));
    current = Sequence();
    current.alphabet = alphabet;
  };

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view text = trim(line);
    if (text.empty()) continue;
    if (text.front() == '>') {
      flush();
      in_record = true;
      text.remove_prefix(1);
      text = trim(text);
      const std::size_t space = text.find_first_of(" \t");
      if (space == std::string_view::npos) {
        current.id = std::string(text);
      } else {
        current.id = std::string(text.substr(0, space));
        current.description = std::string(trim(text.substr(space + 1)));
      }
      continue;
    }
    if (text.front() == ';') continue;  // legacy FASTA comment line
    if (!in_record) {
      throw IoError("FASTA: residue data before any '>' header at line " +
                    std::to_string(line_no));
    }
    for (char c : text) {
      if (c == ' ' || c == '\t') continue;
      current.residues.push_back(codes.encode(c));
    }
  }
  flush();
  return records;
}

std::vector<Sequence> read_fasta_file(const std::string& path,
                                      AlphabetKind alphabet) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open FASTA file: " + path);
  return read_fasta(in, alphabet);
}

void write_fasta(std::ostream& out, const std::vector<Sequence>& records,
                 std::size_t width) {
  SWDUAL_REQUIRE(width > 0, "FASTA wrap width must be positive");
  for (const Sequence& record : records) {
    out << '>' << record.id;
    if (!record.description.empty()) out << ' ' << record.description;
    out << '\n';
    const std::string text = record.to_text();
    for (std::size_t pos = 0; pos < text.size(); pos += width) {
      out << text.substr(pos, width) << '\n';
    }
    if (text.empty()) out << '\n';
  }
}

void write_fasta_file(const std::string& path,
                      const std::vector<Sequence>& records,
                      std::size_t width) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open FASTA file for writing: " + path);
  write_fasta(out, records, width);
  if (!out) throw IoError("FASTA write failed: " + path);
}

}  // namespace swdual::seq
