// Query-set construction for the paper's three experimental configurations.
//
// §V-A/B use 40 real query sequences of length 100–5,000 aa taken from
// UniProt. §V-C adds two 40-sequence sets drawn from UniProt:
//   homogeneous   — lengths 4,500..5,000 (similar task sizes)
//   heterogeneous — lengths 4..35,213 (the database's full span)
#pragma once

#include <cstdint>
#include <vector>

#include "seq/sequence.h"
#include "util/rng.h"

namespace swdual::seq {

enum class QuerySetKind { kPaper, kHomogeneous, kHeterogeneous };

/// Number of query sequences in every paper experiment.
inline constexpr std::size_t kPaperQueryCount = 40;

/// Draw a query set of `count` sequences from the database records whose
/// lengths fall inside [min_len, max_len]; if the database lacks a length
/// extreme the set is topped up with synthetic sequences at the bound, so
/// the configured span is always realized. Deterministic in `seed`.
std::vector<Sequence> sample_query_set(const std::vector<Sequence>& database,
                                       std::size_t count, std::size_t min_len,
                                       std::size_t max_len,
                                       std::uint64_t seed);

/// Build one of the three paper query sets from a (synthetic) UniProt.
std::vector<Sequence> make_query_set(QuerySetKind kind,
                                     const std::vector<Sequence>& uniprot,
                                     std::uint64_t seed = 42);

}  // namespace swdual::seq
