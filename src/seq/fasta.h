// FASTA format reading and writing (Pearson 1990, the paper's input format).
//
// FASTA is a sequential text format — you cannot seek to the i-th record,
// which is why the paper introduces a binary random-access format (see
// swdb.h). This module provides the text side of that conversion.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "seq/sequence.h"

namespace swdual::seq {

/// Parse every record from a FASTA stream. Residue lines may wrap; blank
/// lines are skipped; the header's first token becomes the id and the rest
/// the description. Throws IoError on structural problems (residue data
/// before any header).
std::vector<Sequence> read_fasta(std::istream& in, AlphabetKind alphabet);

/// Parse a FASTA file from disk.
std::vector<Sequence> read_fasta_file(const std::string& path,
                                      AlphabetKind alphabet);

/// Write records in FASTA with lines wrapped at `width` residues.
void write_fasta(std::ostream& out, const std::vector<Sequence>& records,
                 std::size_t width = 60);

/// Write records to a FASTA file on disk.
void write_fasta_file(const std::string& path,
                      const std::vector<Sequence>& records,
                      std::size_t width = 60);

}  // namespace swdual::seq
