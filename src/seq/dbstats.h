// Descriptive statistics over a sequence database (used to print Table III
// and to size workloads for the performance model).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "seq/sequence.h"
#include "seq/swdb.h"

namespace swdual::seq {

struct DatabaseStats {
  std::size_t num_sequences = 0;
  std::size_t min_length = 0;
  std::size_t max_length = 0;
  double mean_length = 0.0;
  std::uint64_t total_residues = 0;
};

/// Compute stats from in-memory records.
DatabaseStats compute_stats(const std::vector<Sequence>& records);

/// Compute stats from length data only (e.g. from an SWDB index, without
/// reading residues).
DatabaseStats compute_stats_from_lengths(const std::vector<std::size_t>& lengths);

/// Compute stats for an open SWDB straight from its index section — no
/// record is decoded and no data-section byte is touched, so this is O(n)
/// in the record count regardless of database size.
DatabaseStats compute_stats(const SwdbReader& db);

}  // namespace swdual::seq
